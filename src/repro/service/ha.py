"""Multi-daemon HA placement control plane (DESIGN.md §15).

One :class:`~repro.service.PlacementDaemon` is a single point of
failure: kill it and the fleet stops placing jobs.  This module grows
the service into a **highly-available control plane** of N daemons
that share the fleet without ever disagreeing about it:

* **Shard-group leases** (:mod:`repro.service.lease`) — the registry's
  shards are partitioned into contiguous *groups*; each daemon holds a
  time-bounded lease per group, persisted as control-WAL events with a
  globally monotonic **fencing token**.  Every durable operation — a
  registry write, a committed placement decision — presents its token
  and is rejected (*fenced*) when stale, so a deposed daemon's
  in-flight writes can never land.
* **Failover** (:class:`FailoverManager`) — daemons heartbeat the
  existing :class:`~repro.recovery.NodeSupervisor` machinery; a daemon
  silent past the heartbeat timeout has its groups declared orphaned,
  and a surviving daemon re-acquires each with bounded, seeded-jitter
  retries (the shared :class:`~repro.core.backoff.BackoffPolicy`) —
  succeeding only once the old lease expires, which is what makes the
  handover safe without any distributed consensus.
* **Cross-shard arbitration** (:mod:`repro.service.arbitration`) — a
  placement whose nodes span groups owned by different daemons goes
  through two-phase reserve/commit with per-phase deadlines on the
  virtual clock; timeouts release and retry with backoff, and livelock
  is broken deterministically by fencing-token priority.

:class:`HAControlPlane` is deliberately a *synchronous* deterministic
simulation (one FIFO of operations with head-of-line blocking), not an
asyncio loop: total order is the property under test, and keeping it
explicit is what lets :class:`HAFailoverDrill` prove the headline
claim — after SIGKILLs, clock skew, torn lease records, and a
dual-owner partition, the committed decision stream is **byte-equal to
a never-crashed single-daemon run**, with zero double commits and zero
decisions under an expired lease (independently audited by
:func:`~repro.service.lease.verify_control_log`).  Wall-clock time is
confined to the ``ha/place_latency_s`` obs histogram and never enters
the rendered :class:`~repro.resilience.SurvivabilityReport`, so CI can
run the drill twice and ``cmp`` the reports.
"""

from __future__ import annotations

import hashlib
import random
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Deque, Dict, List, Optional, TextIO,
                    Tuple)

from ..core.backoff import BackoffPolicy
from ..core.margin_selection import bucket_node_margin
from ..hpc.cluster import Cluster
from ..obs import Recorder, get_recorder, recording
from ..recovery import Checkpoint, CheckpointStore, NodeSupervisor
from ..resilience.report import SurvivabilityReport
from .arbitration import CrossShardArbiter
from .daemon import (BucketPool, Decision, DUPLICATE, PLACED,
                     RELEASED, RegistryWrite, UNKNOWN_JOB,
                     UNSATISFIABLE, CLOSED)
from .lease import (CONTROL_LOG_FILE, ControlLog, LeaseTable,
                    verify_control_log)
from .sharding import DEFAULT_SHARDS, ShardedRegistry
from .soak import _RUNGS, _WRITE_KINDS

__all__ = ["FailoverManager", "HAConfig", "HAControlPlane",
           "HADaemon", "HADrillResult", "HAFailoverDrill",
           "ShardGroups"]

#: Fault-injection schedule: fraction of the event budget at which
#: each fault class of the drill fires (documentation order).
FAULT_SCHEDULE = (("skew", 0.25), ("torn", 0.40),
                  ("partition", 0.50), ("heal", 0.70),
                  ("kill", 0.78))


@dataclass
class HAConfig:
    """Knobs for the HA plane and its failover drill.

    The lease timings must satisfy ``renew_every_s`` ≪
    ``lease_duration_s`` (a healthy daemon renews many times per
    lease) and ``heartbeat_timeout_s`` < ``lease_duration_s`` (a death
    is detected before the lease runs out, so failover begins with
    bounded retries *against* the expiry rather than after it)."""
    nodes: int = 1490
    shards: int = DEFAULT_SHARDS
    daemons: int = 2
    events: int = 120_000
    seed: int = 2021
    lease_duration_s: float = 30.0
    renew_every_s: float = 5.0
    heartbeat_timeout_s: float = 12.0
    reserve_timeout_s: float = 5.0
    commit_timeout_s: float = 5.0
    retry_base_s: float = 0.1
    retry_cap_s: float = 2.0
    failover_base_s: float = 0.5
    failover_cap_s: float = 8.0
    failover_max_attempts: int = 40
    jitter_fraction: float = 0.25
    compact_every: int = 2048
    checkpoint_every_bursts: int = 64
    p999_budget_s: float = 0.25
    registry_dir: Optional[object] = None

    @classmethod
    def smoke(cls) -> "HAConfig":
        """CI-sized preset: the full fault matrix in seconds.  Lease
        timings shrink with the event budget so partitions outlive the
        lease and failovers complete with traffic to spare."""
        return cls(nodes=200, shards=4, events=6_000,
                   lease_duration_s=3.0, renew_every_s=0.75,
                   heartbeat_timeout_s=1.5, retry_base_s=0.05,
                   retry_cap_s=0.5, failover_base_s=0.05,
                   failover_cap_s=0.5, compact_every=256,
                   checkpoint_every_bursts=16)

    def validate(self) -> "HAConfig":
        if self.nodes <= 0 or self.events <= 0:
            raise ValueError("nodes and events must be positive")
        if self.daemons < 1:
            raise ValueError("need at least one daemon")
        if self.lease_duration_s <= 0:
            raise ValueError("lease_duration_s must be positive")
        if not 0 < self.renew_every_s < self.lease_duration_s:
            raise ValueError("renew_every_s must fall inside the "
                             "lease duration")
        if not 0 < self.heartbeat_timeout_s < self.lease_duration_s:
            raise ValueError("heartbeat_timeout_s must fall inside "
                             "the lease duration")
        if self.failover_max_attempts < 1:
            raise ValueError("failover_max_attempts must be positive")
        return self


class ShardGroups:
    """Contiguous partition of shard ids into lease-able groups."""

    def __init__(self, shard_count: int, group_count: int):
        if shard_count < 1 or group_count < 1:
            raise ValueError("counts must be positive")
        self.group_count = min(group_count, shard_count)
        base = shard_count // self.group_count
        extra = shard_count % self.group_count
        self._of_shard: List[int] = []
        for gid in range(self.group_count):
            self._of_shard.extend([gid] *
                                  (base + (1 if gid < extra else 0)))

    def of_shard(self, shard_id: int) -> int:
        return self._of_shard[shard_id]

    def shards_of(self, group: int) -> Tuple[int, ...]:
        return tuple(s for s, g in enumerate(self._of_shard)
                     if g == group)


class HADaemon:
    """One placement daemon's HA state: the shard-group fencing
    tokens it believes it holds, its full-fleet free-pool replica,
    and its fault posture (crashed / partitioned / clock-skewed).

    The *believes* matters: a partitioned daemon keeps stale tokens —
    exactly the dual-owner window the fencing gate exists for."""

    def __init__(self, daemon_id: int):
        self.id = daemon_id
        self.state = "active"            # active | crashed
        self.partitioned = False
        self.clock_skew_s = 0.0
        self.tokens: Dict[int, int] = {}   # group -> fencing token
        self.pool = BucketPool()
        self.pool_stale = False

    @property
    def serviceable(self) -> bool:
        """Reachable and alive (may still hold zero leases)."""
        return self.state == "active" and not self.partitioned

    def local_now(self, now_s: float) -> float:
        """This daemon's (possibly skewed) clock reading."""
        return now_s + self.clock_skew_s


@dataclass
class _Reacquire:
    attempt: int = 0
    next_at_s: float = 0.0


class FailoverManager:
    """Re-acquires orphaned shard groups after a daemon death.

    Driven by the supervisor's missed-heartbeat verdicts: each
    orphaned group is retried with bounded, seeded-jitter backoff
    until the dead owner's lease expires and a surviving daemon's
    ``acquire`` succeeds (taking a fresh, higher fencing token)."""

    def __init__(self, plane: "HAControlPlane",
                 policy: BackoffPolicy, max_attempts: int):
        self._plane = plane
        self._policy = policy
        self._max_attempts = max_attempts
        self._pending: Dict[int, _Reacquire] = {}
        self.failovers = 0
        self.giveups = 0

    def orphan(self, group: int, now_s: float) -> None:
        """Mark a group as owner-less; re-acquisition starts now."""
        if group not in self._pending:
            self._pending[group] = _Reacquire(0, now_s)

    @property
    def pending(self) -> Tuple[int, ...]:
        return tuple(sorted(self._pending))

    def tick(self, now_s: float) -> None:
        plane = self._plane
        for group in list(sorted(self._pending)):
            state = self._pending[group]
            if now_s < state.next_at_s:
                continue
            owner = plane.table.owner_of(group, now_s)
            if owner is not None:
                if plane.daemons[owner].serviceable:
                    # Someone reachable holds it again; done.
                    del self._pending[group]
                    continue
                # A live lease held by an unreachable daemon: nothing
                # to do but wait it out (never steal a valid lease).
                lease = None
            else:
                successor = plane.first_serviceable()
                lease = (plane.table.acquire(group, successor.id,
                                             now_s)
                         if successor is not None else None)
            state.attempt += 1
            if lease is not None:
                plane.daemons[lease.owner].tokens[group] = lease.token
                self.failovers += 1
                del self._pending[group]
                rec = get_recorder()
                if rec.enabled:
                    rec.counter("ha", "failovers")
            elif state.attempt >= self._max_attempts:
                del self._pending[group]
                self.giveups += 1
            else:
                state.next_at_s = now_s + self._policy.delay(
                    state.attempt, key=group)


@dataclass
class HAPlaneStats:
    """Deterministic plane-level counters (wall clock never enters)."""
    decisions: int = 0
    placed: int = 0
    unsatisfiable: int = 0
    duplicates: int = 0
    released: int = 0
    unknown_releases: int = 0
    writes: int = 0
    retries: int = 0
    daemon_crashes: int = 0
    daemon_partitions: int = 0
    partitions_healed: int = 0
    torn_lease_records: int = 0
    checkpoints: int = 0
    restores: int = 0
    closed: int = 0


class _Op:
    """One queued operation (FIFO with head-of-line blocking: total
    order *is* the consistency argument, so a blocked head stalls
    everything behind it rather than letting later ops overtake)."""

    __slots__ = ("kind", "job", "width", "write", "t0", "attempt",
                 "next_retry_s")

    def __init__(self, kind: str, job: int = 0, width: int = 0,
                 write: Optional[RegistryWrite] = None):
        self.kind = kind
        self.job = job
        self.width = width
        self.write = write
        self.t0 = time.perf_counter()
        self.attempt = 0
        self.next_retry_s = 0.0


class HAControlPlane:
    """N placement daemons sharing one fleet under shard-group
    leases (see module docstring).

    ``decision_sink`` receives every committed :class:`Decision` in
    commit order; the stream is a pure function of the submitted
    operation sequence, independent of faults — the drill's headline
    invariant."""

    def __init__(self, config: Optional[HAConfig] = None,
                 daemons: Optional[int] = None,
                 registry_path: Optional[object] = None,
                 decision_sink: Optional[Callable[[Decision], None]]
                 = None):
        self.config = cfg = (config if config is not None
                             else HAConfig()).validate()
        n = daemons if daemons is not None else cfg.daemons
        if n < 1:
            raise ValueError("need at least one daemon")
        path = Path(registry_path) if registry_path is not None \
            else None
        self.registry = ShardedRegistry(path, shards=cfg.shards,
                                        compact_every=cfg.compact_every)
        for node in Cluster(cfg.nodes, seed=cfg.seed).nodes:
            self.registry.record_profile(node.index, node.margin_mts,
                                         time_s=0.0)
        self.groups = ShardGroups(cfg.shards, n)
        log = ControlLog(path / CONTROL_LOG_FILE
                         if path is not None else None)
        self.table = LeaseTable(cfg.lease_duration_s, log)
        self.arbiter = CrossShardArbiter(cfg.reserve_timeout_s,
                                         cfg.commit_timeout_s)
        self.stats = HAPlaneStats()
        self.daemons = [HADaemon(i) for i in range(n)]
        self._sups = {
            d.id: NodeSupervisor(
                node=d.id,
                heartbeat_timeout_ns=cfg.heartbeat_timeout_s * 1e9,
                max_restarts=16, seed=cfg.seed)
            for d in self.daemons}
        self._retry = BackoffPolicy(base=cfg.retry_base_s,
                                    cap=cfg.retry_cap_s,
                                    jitter_fraction=cfg.jitter_fraction,
                                    seed=cfg.seed)
        self.failover = FailoverManager(
            self, BackoffPolicy(base=cfg.failover_base_s,
                                cap=cfg.failover_cap_s,
                                jitter_fraction=cfg.jitter_fraction,
                                seed=cfg.seed + 1),
            cfg.failover_max_attempts)
        self._ckpt = CheckpointStore(path / "control-ckpt"
                                     if path is not None else None)
        self._sink = decision_sink
        self._ops: Deque[_Op] = deque()
        self._placements: Dict[int, Tuple[int, ...]] = {}
        self._decision_seq = 0
        self.now_s = 0.0
        for gid in range(self.groups.group_count):
            owner = gid % n
            lease = self.table.acquire(gid, owner, 0.0)
            self.daemons[owner].tokens[gid] = lease.token
        for daemon in self.daemons:
            self._rebuild_pool(daemon)
            self._sups[daemon.id].heartbeat(0.0)

    # -- submission (enqueue + immediate pump) ------------------------------------

    @property
    def pending(self) -> int:
        """Operations queued behind a blocked head (0 = caught up)."""
        return len(self._ops)

    def submit_place(self, job_id: int, width: int) -> None:
        if width <= 0:
            raise ValueError("jobs need at least one node")
        self._ops.append(_Op("place", job=job_id, width=width))
        self.pump()

    def submit_release(self, job_id: int) -> None:
        self._ops.append(_Op("release", job=job_id))
        self.pump()

    def submit_write(self, write: RegistryWrite) -> None:
        self._ops.append(_Op("write", write=write))
        self.pump()

    # -- clock / liveness ----------------------------------------------------------

    def tick(self, now_s: float) -> None:
        """Advance the virtual clock: heartbeats, lease renewals,
        failure detection, failover retries, then drain the queue."""
        if now_s > self.now_s:
            self.now_s = now_s
        now_ns = self.now_s * 1e9
        for daemon in self.daemons:
            if not daemon.serviceable:
                continue
            self._sups[daemon.id].heartbeat(now_ns)
            self._renew(daemon)
        for daemon in self.daemons:
            verdict = self._sups[daemon.id].check(now_ns)
            if verdict is not None:
                # Missed heartbeats: every group this daemon holds a
                # lease on is orphaned; failover takes it from here.
                for group in self.table.owned_groups(daemon.id):
                    self.failover.orphan(group, self.now_s)
        self.failover.tick(self.now_s)
        self.pump()

    def _renew(self, daemon: HADaemon) -> None:
        for group in list(sorted(daemon.tokens)):
            token = daemon.tokens[group]
            lease = self.table.lease(group)
            if lease is None or lease.token != token or \
                    lease.owner != daemon.id:
                # Deposed, and reachable enough to observe it: drop
                # the stale claim.
                del daemon.tokens[group]
                continue
            if self.now_s < lease.renewed_s + self.config.renew_every_s:
                continue
            if not self.table.renew(group, daemon.id, token,
                                    daemon.local_now(self.now_s)):
                # Any rejection makes the daemon resync its clock; an
                # *expired* lease additionally forces a re-acquire
                # under a fresh fencing token.
                daemon.clock_skew_s = 0.0
                if not lease.valid_at(self.now_s):
                    fresh = self.table.acquire(group, daemon.id,
                                               self.now_s)
                    if fresh is not None:
                        daemon.tokens[group] = fresh.token
                    else:
                        del daemon.tokens[group]

    # -- the operation pump --------------------------------------------------------

    def pump(self) -> None:
        """Drain the FIFO head-first.  A blocked head (orphaned group,
        unreachable owner, arbitration conflict) schedules a retry
        with seeded backoff and stalls the queue — preserving the
        total order that makes the decision stream fault-independent."""
        while self._ops:
            op = self._ops[0]
            if op.next_retry_s > self.now_s:
                break
            if self._attempt(op):
                self._ops.popleft()
                continue
            if op.attempt:
                self.stats.retries += 1
            op.attempt += 1
            op.next_retry_s = self.now_s + self._retry.delay(
                min(op.attempt, 12), key=op.job)
            break

    def _attempt(self, op: _Op) -> bool:
        if op.kind == "place":
            return self._attempt_place(op)
        if op.kind == "release":
            return self._attempt_release(op)
        return self._attempt_write(op)

    def first_serviceable(self) -> Optional[HADaemon]:
        for daemon in self.daemons:
            if daemon.serviceable:
                return daemon
        return None

    def _coordinator(self, job_id: int
                     ) -> Tuple[Optional[HADaemon], int]:
        """A serviceable daemon holding at least one *valid* lease
        (its lowest such group is the commit group), preferring the
        job's home daemon for spread."""
        n = len(self.daemons)
        for offset in range(n):
            daemon = self.daemons[(job_id + offset) % n]
            if not daemon.serviceable:
                continue
            for group in sorted(daemon.tokens):
                if self.table.validate(group, daemon.id,
                                       daemon.tokens[group],
                                       self.now_s):
                    return daemon, group
        return None, -1

    def _vouched(self, group: int) -> bool:
        """Can this group approve a cross-shard reserve?  Yes iff it
        has a live lease held by a reachable daemon."""
        owner = self.table.owner_of(group, self.now_s)
        return owner is not None and self.daemons[owner].serviceable

    def _commit(self, daemon: HADaemon, group: int, job_id: int,
                status: str, nodes: Tuple[int, ...] = (),
                bucket: int = 0) -> Optional[Decision]:
        """Durably commit one decision through the fencing gate."""
        event = self.table.commit(
            group, daemon.id, daemon.tokens[group], self.now_s,
            {"job": job_id, "status": status, "nodes": list(nodes),
             "bucket": bucket})
        if event is None:
            return None
        self._decision_seq += 1
        decision = Decision(self._decision_seq, job_id, status,
                            tuple(nodes), bucket)
        self.stats.decisions += 1
        if self._sink is not None:
            self._sink(decision)
        return decision

    def _attempt_place(self, op: _Op) -> bool:
        daemon, home = self._coordinator(op.job)
        if daemon is None:
            return False
        if op.job in self._placements:
            if self._commit(daemon, home, op.job, DUPLICATE) is None:
                return False
            self.stats.duplicates += 1
            self._observe_latency(op)
            return True
        chosen = daemon.pool.select(op.width)
        if chosen is None:
            if self._commit(daemon, home, op.job,
                            UNSATISFIABLE) is None:
                return False
            self.stats.unsatisfiable += 1
            self._observe_latency(op)
            return True
        bucket = bucket_node_margin(
            min(daemon.pool.margin(n) for n in chosen))
        touched = sorted({
            self.groups.of_shard(self.registry.shard_id(n))
            for n in chosen})
        foreign = [g for g in touched
                   if not self.table.validate(
                       g, daemon.id, daemon.tokens.get(g, -1),
                       self.now_s)]
        if foreign:
            # Two-phase reserve/commit across the other owners.
            reservation = self.arbiter.reserve(
                daemon.id, daemon.tokens[home], tuple(chosen),
                tuple(touched), self.now_s, self._vouched)
            if reservation is None:
                return False
            if not self.arbiter.commit(reservation.arb_id,
                                       self.now_s):
                return False
        decision = self._commit(daemon, home, op.job, PLACED,
                                tuple(chosen), bucket)
        if decision is None:
            return False
        self._placements[op.job] = tuple(chosen)
        for peer in self.daemons:
            if peer.serviceable:
                peer.pool.allocate(chosen, op.job)
        self.stats.placed += 1
        self._observe_latency(op)
        return True

    def _attempt_release(self, op: _Op) -> bool:
        daemon, home = self._coordinator(op.job)
        if daemon is None:
            return False
        nodes = self._placements.get(op.job)
        if nodes is None:
            if self._commit(daemon, home, op.job,
                            UNKNOWN_JOB) is None:
                return False
            self.stats.unknown_releases += 1
            return True
        if self._commit(daemon, home, op.job, RELEASED,
                        nodes) is None:
            return False
        del self._placements[op.job]
        for peer in self.daemons:
            if peer.serviceable:
                peer.pool.release(op.job)
        self.stats.released += 1
        return True

    def _attempt_write(self, op: _Op) -> bool:
        write = op.write
        group = self.groups.of_shard(
            self.registry.shard_id(write.node))
        owner = self.table.owner_of(group, self.now_s)
        if owner is None:
            return False
        daemon = self.daemons[owner]
        token = daemon.tokens.get(group)
        if not daemon.serviceable or token is None:
            return False
        if not self.table.validate(group, daemon.id, token,
                                   self.now_s):
            return False
        self.registry.record(write.kind, write.node,
                             time_s=self.now_s, **write.payload)
        margin = self.registry.node(write.node).effective_margin_mts
        for peer in self.daemons:
            if peer.serviceable:
                peer.pool.set_margin(write.node, margin)
        self.stats.writes += 1
        return True

    def _observe_latency(self, op: _Op) -> None:
        rec = get_recorder()
        if rec.enabled:
            rec.observe("ha", "place_latency_s",
                        time.perf_counter() - op.t0)

    # -- durability ----------------------------------------------------------------

    def checkpoint(self) -> None:
        """Persist the lease table (control-WAL seq included, so a
        restore replays only the tail)."""
        self._ckpt.write(Checkpoint(
            node=0, seq=self.table.log.last_seq,
            time_ns=self.now_s * 1e9,
            state={"lease_table": self.table.to_state()}))
        self.stats.checkpoints += 1

    def reload_control_state(self) -> None:
        """Crash-reload the lease table: newest verifying checkpoint
        plus control-WAL tail replay; full-WAL replay when no
        checkpoint exists.  Daemons keep only claims that still
        validate (conservative: a lease can be lost early, never kept
        too long)."""
        checkpoint, _ = self._ckpt.load_latest()
        if checkpoint is not None:
            self.table.restore(
                dict(checkpoint.state.get("lease_table", {})))
            self.stats.restores += 1
        else:
            self.table.replay()
        for daemon in self.daemons:
            for group in list(sorted(daemon.tokens)):
                lease = self.table.lease(group)
                if lease is None or lease.owner != daemon.id or \
                        lease.token != daemon.tokens[group]:
                    del daemon.tokens[group]

    # -- fault seams (the chaos campaign drives these) ----------------------------

    def kill_daemon(self, daemon_id: int) -> None:
        """SIGKILL mid-lease: one last renewal lands (the crash falls
        between a renewal and the next compaction), then the daemon
        goes silent — no release, no handover."""
        daemon = self.daemons[daemon_id]
        for group in sorted(daemon.tokens):
            self.table.renew(group, daemon.id, daemon.tokens[group],
                             self.now_s)
        daemon.state = "crashed"
        daemon.pool_stale = True
        self.stats.daemon_crashes += 1

    def partition_daemon(self, daemon_id: int) -> None:
        """Network partition: the daemon keeps running (and keeps its
        stale view of its tokens) but heartbeats and renewals no
        longer reach the control plane."""
        daemon = self.daemons[daemon_id]
        daemon.partitioned = True
        daemon.pool_stale = True
        self.stats.daemon_partitions += 1

    def heal_daemon(self, daemon_id: int) -> None:
        """Partition heals.  The rejoining daemon first flushes the
        writes it buffered while isolated — each carried its stale
        fencing token, so the lease table's commit gate rejects them
        (the dual-owner window closes without a double commit) — then
        rebuilds its pool replica and rejoins as a standby."""
        daemon = self.daemons[daemon_id]
        daemon.partitioned = False
        sup = self._sups[daemon_id]
        if sup.state == "restarting":
            sup.restarted(self.now_s * 1e9)
        else:
            sup.heartbeat(self.now_s * 1e9)
        for group in list(sorted(daemon.tokens)):
            token = daemon.tokens[group]
            if not self.table.validate(group, daemon.id, token,
                                       self.now_s):
                self.table.commit(group, daemon.id, token, self.now_s,
                                  {"job": -1,
                                   "status": "buffered-write",
                                   "nodes": [], "bucket": 0})
                del daemon.tokens[group]
        self._rebuild_pool(daemon)
        self.stats.partitions_healed += 1

    def tear_lease_record(self) -> bool:
        """Torn lease record: force a renewal append, destroy it (the
        crash-mid-append shape), then crash-reload the control state.
        The lease reverts to its pre-renewal expiry — shorter, never
        longer, so safety is preserved conservatively."""
        target = None
        for group in range(self.groups.group_count):
            owner = self.table.owner_of(group, self.now_s)
            if owner is not None and \
                    self.daemons[owner].serviceable:
                target = (self.daemons[owner], group)
                break
        if target is None:
            return False
        daemon, group = target
        self.table.renew(group, daemon.id, daemon.tokens[group],
                         self.now_s)
        if self.table.log.tear_tail() is None:
            return False
        self.stats.torn_lease_records += 1
        self.reload_control_state()
        return True

    def inject_clock_skew(self, daemon_id: int,
                          skew_s: float) -> None:
        """The daemon's clock jumps by ``skew_s`` (negative = behind);
        its next renewal carries the skewed reading and, when the
        reading runs backwards past the last renewal, is rejected."""
        self.daemons[daemon_id].clock_skew_s = float(skew_s)

    # -- shutdown ------------------------------------------------------------------

    def stop(self) -> int:
        """Drain what can make progress, answer the rest ``closed``,
        abort outstanding arbitration reserves (reserved capacity
        returns to the pool), and release every held lease cleanly.
        Returns the number of operations closed unserved."""
        self.pump()
        closed = 0
        while self._ops:
            op = self._ops.popleft()
            if op.kind in ("place", "release"):
                self._decision_seq += 1
                decision = Decision(self._decision_seq, op.job,
                                    CLOSED)
                self.stats.decisions += 1
                self.stats.closed += 1
                closed += 1
                if self._sink is not None:
                    self._sink(decision)
        self.arbiter.release_all()
        for daemon in self.daemons:
            if not daemon.serviceable:
                continue
            for group in list(sorted(daemon.tokens)):
                self.table.release(group, daemon.id,
                                   daemon.tokens.pop(group),
                                   self.now_s)
        self.table.log.close()
        return closed

    # -- helpers -------------------------------------------------------------------

    def _rebuild_pool(self, daemon: HADaemon) -> None:
        """Reconstruct a daemon's full-fleet replica from ground
        truth: registry margins plus the committed placement map."""
        pool = BucketPool()
        for sid in range(self.registry.shard_count):
            for record in self.registry.shard(sid).nodes():
                pool.set_margin(record.node,
                                record.effective_margin_mts)
        for job_id in sorted(self._placements):
            pool.allocate(self._placements[job_id], job_id)
        daemon.pool = pool
        daemon.pool_stale = False


def _random_write(rng: random.Random, nodes: int) -> RegistryWrite:
    """Same registry-write mix as the soak generator."""
    node = rng.randrange(nodes)
    kind = _WRITE_KINDS[rng.randrange(len(_WRITE_KINDS))]
    if kind in ("demote", "promote", "adapt"):
        payload = {"margin_mts": _RUNGS[rng.randrange(len(_RUNGS))],
                   "reason": "ha-drill"}
        if kind == "adapt":
            payload["direction"] = "down"
    elif kind == "profile":
        payload = {"margin_mts": _RUNGS[rng.randrange(3)],
                   "channel_margins": [], "attempts": 1}
    elif kind == "drift":
        payload = {"ambient_c": 20.0 + rng.random() * 15.0,
                   "dimm_c": 40.0 + rng.random() * 20.0,
                   "reason": "ha-drill"}
    else:
        payload = {"reason": "ha-drill"}
    return RegistryWrite(kind, node, payload)


@dataclass
class HADrillResult:
    """The failover drill's verdict: the (byte-reproducible)
    survivability report plus wall-clock latency evidence, kept apart
    so CI can ``cmp`` the former."""
    report: SurvivabilityReport
    digest: str
    reference_digest: str
    p50_s: Optional[float] = None
    p99_s: Optional[float] = None
    p999_s: Optional[float] = None
    p999_budget_s: float = 0.25
    wall_s: float = 0.0

    def latency_ok(self) -> bool:
        return self.p999_s is None or self.p999_s <= \
            self.p999_budget_s

    def passed(self) -> bool:
        return self.report.passed() and self.latency_ok()

    def format_summary(self) -> str:
        """Operator-facing text (wall clock included — never ``cmp``
        this; ``report.render()`` is the byte-compared artifact)."""
        r = self.report
        lines = [
            "ha-failover: {} daemons, {} groups, {} decisions, "
            "seed {}".format(r.ha_daemons, r.ha_groups,
                             r.ha_decisions, r.seed),
            "  crashes {}  partitions {}  failovers {}  "
            "fenced writes {}  torn lease records {}".format(
                r.daemon_crashes, r.daemon_partitions, r.failovers,
                r.fenced_writes, r.torn_lease_records),
            "  double commits {}  expired-lease decisions {}  "
            "prefix-consistent {} ({} decisions)".format(
                r.double_commits, r.expired_lease_decisions,
                r.prefix_consistent, r.decision_prefix_len),
            "  decision digest {}".format(self.digest),
            "  reference digest {}".format(self.reference_digest),
        ]
        if self.p999_s is not None:
            lines.append(
                "  place latency p50 {:.6f}s  p99 {:.6f}s  "
                "p999 {:.6f}s (budget {:.6f}s)".format(
                    self.p50_s, self.p99_s, self.p999_s,
                    self.p999_budget_s))
        lines.append("  wall {:.2f}s".format(self.wall_s))
        verdict = "PASSED" if self.passed() else "FAILED"
        lines.append("  verdict: {}".format(verdict))
        for failure in self.report.failures():
            lines.append("    - " + failure)
        if not self.latency_ok():
            lines.append("    - p999 latency over budget")
        return "\n".join(lines)


class HAFailoverDrill:
    """Seeded chaos drill for the HA plane (see module docstring).

    Runs the same seeded operation stream twice — once against N
    daemons with the full fault matrix (SIGKILL mid-lease, skewed
    renewal, torn lease record, dual-owner partition), once against a
    never-crashed single daemon — and demands the committed decision
    streams be byte-equal.  The generator is open-loop with respect to
    decision *timing* (release victims come from the submitted-job
    list), which is what makes the two runs draw identical randomness
    even while the HA run stalls through failovers."""

    def __init__(self, config: Optional[HAConfig] = None):
        self.config = (config if config is not None
                       else HAConfig()).validate()

    def _fault_plan(self) -> Dict[str, int]:
        return {name: int(frac * self.config.events)
                for name, frac in FAULT_SCHEDULE}

    def _inject(self, plan: Dict[str, int], fired: set,
                events_done: int, plane: HAControlPlane) -> None:
        cfg = self.config
        standby = 1 % len(plane.daemons)
        for name, _ in FAULT_SCHEDULE:
            if name in fired or events_done < plan[name]:
                continue
            fired.add(name)
            if name == "skew":
                plane.inject_clock_skew(
                    standby, -(2.0 * cfg.renew_every_s + 1.0))
            elif name == "torn":
                plane.tear_lease_record()
            elif name == "partition" and len(plane.daemons) > 1:
                plane.partition_daemon(standby)
            elif name == "heal" and "partition" in fired and \
                    plane.daemons[standby].partitioned:
                plane.heal_daemon(standby)
            elif name == "kill":
                plane.kill_daemon(0)

    def _run_plane(self, daemons: int, faults: bool, subdir: str,
                   stream: Optional[TextIO]
                   ) -> Tuple[List[str], HAControlPlane,
                              Optional[dict], float]:
        cfg = self.config
        path = None
        if cfg.registry_dir is not None:
            path = Path(cfg.registry_dir) / subdir
        lines: List[str] = []

        def sink(decision: Decision) -> None:
            line = decision.to_json()
            lines.append(line)
            if stream is not None:
                stream.write(line + "\n")

        plane = HAControlPlane(cfg, daemons=daemons,
                               registry_path=path,
                               decision_sink=sink)
        rng = random.Random(cfg.seed)
        plan = self._fault_plan()
        fired: set = set()
        events = 0
        job_id = 0
        now_s = 0.0
        bursts = 0
        active: List[int] = []
        started = time.perf_counter()
        with recording(Recorder()) as rec:
            while events < cfg.events:
                bursts += 1
                now_s += rng.uniform(0.05, 0.5)
                plane.tick(now_s)
                if faults:
                    self._inject(plan, fired, events, plane)
                for _ in range(8 + rng.randrange(24)):
                    roll = rng.random()
                    if roll < 0.40:
                        job_id += 1
                        active.append(job_id)
                        plane.submit_place(job_id,
                                           1 + rng.randrange(8))
                    elif roll < 0.80 and active:
                        victim = active.pop(
                            rng.randrange(len(active)))
                        plane.submit_release(victim)
                    elif roll < 0.83:
                        plane.submit_release(
                            10_000_000 + rng.randrange(1000))
                    else:
                        plane.submit_write(
                            _random_write(rng, cfg.nodes))
                    events += 1
                if bursts % cfg.checkpoint_every_bursts == 0:
                    plane.checkpoint()
            # Drain: keep the clock ticking until every queued
            # operation (stalled behind a failover) has committed.
            guard = 0
            while plane.pending and guard < 100_000:
                now_s += 0.25
                plane.tick(now_s)
                guard += 1
            latency = rec.histogram_stats("ha", "place_latency_s")
        wall_s = time.perf_counter() - started
        return lines, plane, latency, wall_s

    def run(self, stream: Optional[TextIO] = None,
            reference_stream: Optional[TextIO] = None
            ) -> HADrillResult:
        """Execute the drill; ``stream`` /``reference_stream`` receive
        the two decision JSONLs (CI compares the files)."""
        cfg = self.config
        ha_lines, plane, latency, wall_s = self._run_plane(
            cfg.daemons, faults=True, subdir="ha", stream=stream)
        ref_lines, ref_plane, _, ref_wall = self._run_plane(
            1, faults=False, subdir="reference",
            stream=reference_stream)
        ref_plane.stop()
        leftover = plane.stop()
        prefix = 0
        for ours, theirs in zip(ha_lines, ref_lines):
            if ours != theirs:
                break
            prefix += 1
        consistent = (leftover == 0 and prefix == len(ha_lines)
                      and prefix == len(ref_lines) and prefix > 0)
        double, expired = verify_control_log(plane.table.log.events)
        table, arb = plane.table.stats, plane.arbiter.stats
        report = SurvivabilityReport(
            seed=cfg.seed,
            duration_hours=plane.now_s / 3600.0,
            ha_scenario="failover-drill",
            ha_daemons=cfg.daemons,
            ha_groups=plane.groups.group_count,
            ha_decisions=len(ha_lines),
            daemon_crashes=plane.stats.daemon_crashes,
            daemon_partitions=plane.stats.daemon_partitions,
            failovers=plane.failover.failovers,
            failover_giveups=plane.failover.giveups,
            lease_acquires=table.acquires,
            lease_renewals=table.renewals,
            renewals_rejected_skew=table.renewals_rejected_skew,
            renewals_rejected_expired=table.renewals_rejected_expired,
            torn_lease_records=plane.stats.torn_lease_records,
            fenced_writes=table.fenced_writes,
            arb_reserves=arb.reserves,
            arb_commits=arb.commits,
            arb_aborts=arb.aborts,
            arb_preemptions=arb.preemptions,
            arb_retries=plane.stats.retries,
            ha_checkpoints=plane.stats.checkpoints,
            ha_restores=plane.stats.restores,
            double_commits=double,
            expired_lease_decisions=expired,
            prefix_consistent=consistent,
            decision_prefix_len=prefix)
        digest = hashlib.sha256(
            ("\n".join(ha_lines) + "\n").encode("ascii")).hexdigest()
        ref_digest = hashlib.sha256(
            ("\n".join(ref_lines) + "\n").encode("ascii")).hexdigest()
        latency = latency or {}
        return HADrillResult(
            report=report, digest=digest, reference_digest=ref_digest,
            p50_s=latency.get("p50"), p99_s=latency.get("p99"),
            p999_s=latency.get("p999"),
            p999_budget_s=cfg.p999_budget_s,
            wall_s=wall_s + ref_wall)
