"""Live placement service (DESIGN.md §14, §15).

The operational layer on top of the fleet subsystem: a
:class:`ShardedRegistry` partitions the margin registry's JSONL log
across N independently compacted shards under a deterministic
node→shard hash; a :class:`PlacementDaemon` answers placement,
release, and registry-write traffic from one asyncio controller loop
with bounded queueing, admission control, and per-shard TTL'd cluster
views; and a :class:`SoakScenario` drives the pair with a seeded
million-event closed loop whose :class:`SoakReport` gates determinism
and tail latency.  The HA tier (:mod:`repro.service.ha`) replicates
the daemon behind shard-group leases with fencing tokens
(:mod:`repro.service.lease`), two-phase cross-shard arbitration
(:mod:`repro.service.arbitration`), and supervisor-driven failover,
proven by :class:`HAFailoverDrill`.  ``repro serve`` and ``repro
soak`` are the CLI surface.
"""

from .arbitration import (ArbitrationStats, CrossShardArbiter,
                          Reservation)
from .daemon import (BucketPool, ClockTick, DaemonConfig, DaemonStats,
                     Decision, PlaceRequest, PlacementDaemon,
                     RegistryWrite, ReleaseRequest, STATUSES)
from .ha import (FailoverManager, HAConfig, HAControlPlane, HADaemon,
                 HADrillResult, HAFailoverDrill, ShardGroups)
from .lease import (CONTROL_LOG_FILE, ControlEvent, ControlLog,
                    LeaseError, LeaseRecord, LeaseTable,
                    verify_control_log)
from .sharding import DEFAULT_SHARDS, ShardedRegistry, shard_for_node
from .soak import SoakConfig, SoakReport, SoakScenario

__all__ = [
    "ArbitrationStats", "BucketPool", "CONTROL_LOG_FILE", "ClockTick",
    "ControlEvent", "ControlLog", "CrossShardArbiter",
    "DEFAULT_SHARDS", "DaemonConfig", "DaemonStats", "Decision",
    "FailoverManager", "HAConfig", "HAControlPlane", "HADaemon",
    "HADrillResult", "HAFailoverDrill", "LeaseError", "LeaseRecord",
    "LeaseTable", "PlaceRequest", "PlacementDaemon", "RegistryWrite",
    "ReleaseRequest", "Reservation", "STATUSES", "ShardGroups",
    "ShardedRegistry", "SoakConfig", "SoakReport", "SoakScenario",
    "shard_for_node", "verify_control_log",
]
