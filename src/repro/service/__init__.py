"""Live placement service (DESIGN.md §14).

The operational layer on top of the fleet subsystem: a
:class:`ShardedRegistry` partitions the margin registry's JSONL log
across N independently compacted shards under a deterministic
node→shard hash; a :class:`PlacementDaemon` answers placement,
release, and registry-write traffic from one asyncio controller loop
with bounded queueing, admission control, and per-shard TTL'd cluster
views; and a :class:`SoakScenario` drives the pair with a seeded
million-event closed loop whose :class:`SoakReport` gates determinism
and tail latency.  ``repro serve`` and ``repro soak`` are the CLI
surface.
"""

from .daemon import (ClockTick, DaemonConfig, DaemonStats, Decision,
                     PlaceRequest, PlacementDaemon, RegistryWrite,
                     ReleaseRequest, STATUSES)
from .sharding import DEFAULT_SHARDS, ShardedRegistry, shard_for_node
from .soak import SoakConfig, SoakReport, SoakScenario

__all__ = [
    "ClockTick", "DEFAULT_SHARDS", "DaemonConfig", "DaemonStats",
    "Decision", "PlaceRequest", "PlacementDaemon", "RegistryWrite",
    "ReleaseRequest", "STATUSES", "ShardedRegistry", "SoakConfig",
    "SoakReport", "SoakScenario", "shard_for_node",
]
