"""Time-bounded shard-group leases with monotonic fencing tokens.

The HA control plane (:mod:`repro.service.ha`) lets several placement
daemons share one fleet by leasing **shard groups**: a daemon may
write to (or commit placements touching) a group only while it holds
that group's lease.  Ownership is made crash-safe by two mechanisms:

* **time-bounded leases** — a lease is valid until ``expires_s`` on
  the virtual clock and must be renewed before then; a daemon that
  stops renewing (crash, partition) loses the group when the lease
  runs out, and a successor can acquire it;
* **fencing tokens** — every successful acquire takes the next value
  of one globally monotonic counter.  Writers present their token on
  every durable operation; a deposed daemon's in-flight writes carry a
  stale token and are *rejected* (``fenced``), never applied — the
  classic fencing argument for why lease-based ownership stays safe
  across partitions where two daemons both believe they own a group.

Every ownership change and every committed placement decision is an
event in the :class:`ControlLog`, an append-only canonical-JSONL WAL
stored alongside the :class:`~repro.service.ShardedRegistry` shards
(same torn-tail tolerance as the margin registry: a crash mid-append
costs at most the final, incomplete line).  The log is the source of
truth: :meth:`LeaseTable.replay` rebuilds the table from it, and
:func:`verify_control_log` is the *independent* post-hoc checker the
failover drill uses to prove no placement was double-committed and no
decision was committed under an expired or stale lease.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..fleet.registry import canonical_json, fsync_dir
from ..obs import get_recorder

__all__ = ["CONTROL_LOG_FILE", "ControlEvent", "ControlLog",
           "LeaseError", "LeaseRecord", "LeaseTable",
           "verify_control_log"]

#: Control-WAL file name inside a sharded registry directory.
CONTROL_LOG_FILE = "control.jsonl"

#: Event kinds the control log records.
CONTROL_KINDS = ("acquire", "renew", "release", "commit")


class LeaseError(RuntimeError):
    """Corrupt control log or an operation that violates the lease
    protocol (not mere rejection: rejections return ``False``)."""


@dataclass(frozen=True)
class LeaseRecord:
    """One group's current lease."""
    group: int
    owner: int              # daemon id
    token: int              # fencing token (globally monotonic)
    acquired_s: float
    renewed_s: float        # high-water renewal stamp (skew guard)
    expires_s: float

    def valid_at(self, now_s: float) -> bool:
        return now_s < self.expires_s


@dataclass(frozen=True)
class ControlEvent:
    """One line of the control WAL."""
    seq: int
    kind: str               # acquire | renew | release | commit
    group: int
    owner: int
    token: int
    time_s: float
    expires_s: float = 0.0
    payload: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        return canonical_json({
            "seq": self.seq, "kind": self.kind, "group": self.group,
            "owner": self.owner, "token": self.token,
            "time_s": self.time_s, "expires_s": self.expires_s,
            "payload": dict(self.payload)})

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "ControlEvent":
        kind = str(doc["kind"])
        if kind not in CONTROL_KINDS:
            raise ValueError("unknown control kind {!r}".format(kind))
        return cls(seq=int(doc["seq"]), kind=kind,
                   group=int(doc["group"]), owner=int(doc["owner"]),
                   token=int(doc["token"]),
                   time_s=float(doc["time_s"]),
                   expires_s=float(doc.get("expires_s", 0.0)),
                   payload=dict(doc.get("payload", {})))


class ControlLog:
    """Append-only control WAL (in-memory when ``path`` is None).

    Inherits the margin registry's durability posture: one canonical
    JSON line per event, flushed on append, **torn-tail tolerant** on
    load (an interrupted final line is dropped and reported, every
    complete prefix line must parse and the seqs must be contiguous).
    ``tear_tail()`` is the chaos seam: it deletes the most recent
    event — exactly what a crash mid-append leaves behind."""

    def __init__(self, path: Optional[object] = None):
        self.path = Path(path) if path is not None else None
        self.events: List[ControlEvent] = []
        self.torn_bytes_dropped = 0
        self._fh = None
        if self.path is not None:
            self._load()
            self._fh = open(self.path, "a")

    # -- persistence --------------------------------------------------------------

    def _load(self) -> None:
        import json
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        complete, tail = lines[:-1], lines[-1]
        if tail:
            # No trailing newline: the final append was interrupted.
            self.torn_bytes_dropped = len(tail)
            self.path.write_bytes(b"\n".join(complete) + b"\n"
                                  if complete else b"")
        for i, line in enumerate(complete):
            if not line.strip():
                continue
            try:
                event = ControlEvent.from_doc(json.loads(line))
            except (ValueError, KeyError, TypeError) as exc:
                if i == len(complete) - 1:
                    # Torn mid-line with a stray newline flushed after:
                    # still the tail; drop it.
                    self.torn_bytes_dropped += len(line)
                    self.path.write_bytes(
                        b"\n".join(complete[:-1]) + b"\n"
                        if complete[:-1] else b"")
                    break
                raise LeaseError("corrupt control log {} line {}: {}"
                                 .format(self.path, i + 1, exc))
            if event.seq != len(self.events) + 1:
                raise LeaseError(
                    "control log {} seq gap: expected {}, found {}"
                    .format(self.path, len(self.events) + 1, event.seq))
            self.events.append(event)

    def append(self, kind: str, group: int, owner: int, token: int,
               time_s: float, expires_s: float = 0.0,
               payload: Optional[Dict[str, object]] = None
               ) -> ControlEvent:
        event = ControlEvent(seq=len(self.events) + 1, kind=kind,
                             group=group, owner=owner, token=token,
                             time_s=time_s, expires_s=expires_s,
                             payload=dict(payload or {}))
        self.events.append(event)
        if self._fh is not None:
            self._fh.write(event.to_json() + "\n")
            self._fh.flush()
        return event

    @property
    def last_seq(self) -> int:
        return len(self.events)

    def events_since(self, seq: int) -> List[ControlEvent]:
        """Events with ``seq`` strictly greater than the given one."""
        return self.events[seq:]

    def tear_tail(self) -> Optional[ControlEvent]:
        """Chaos seam: destroy the most recent record, exactly as a
        crash mid-append would (the persisted log loses its last line;
        the in-memory view loses the event).  Returns the casualty."""
        if not self.events:
            return None
        victim = self.events.pop()
        if self.path is not None:
            self._fh.close()
            raw = self.path.read_bytes().splitlines(keepends=True)
            self.path.write_bytes(b"".join(raw[:-1]))
            if self.path.parent.is_dir():
                fsync_dir(self.path.parent)
            self._fh = open(self.path, "a")
        return victim

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


@dataclass
class LeaseStats:
    """Deterministic lease-protocol counters."""
    acquires: int = 0
    acquire_rejects: int = 0
    renewals: int = 0
    renewals_rejected_skew: int = 0
    renewals_rejected_expired: int = 0
    renewals_rejected_fenced: int = 0
    releases: int = 0
    commits: int = 0
    fenced_writes: int = 0


class LeaseTable:
    """Current lease per shard group + the fencing-token counter.

    All mutations flow through the :class:`ControlLog` so the table is
    always reconstructible (:meth:`replay`).  The token counter is
    **globally monotonic across groups**: tokens double as an
    arbitration priority (older ownership wins a livelock, see
    :mod:`repro.service.arbitration`) and as the total order that
    makes "stale" well-defined for fencing."""

    def __init__(self, duration_s: float,
                 log: Optional[ControlLog] = None):
        if duration_s <= 0:
            raise ValueError("lease duration must be positive")
        self.duration_s = float(duration_s)
        self.log = log if log is not None else ControlLog()
        self.stats = LeaseStats()
        self._leases: Dict[int, LeaseRecord] = {}
        self._next_token = 1

    # -- queries ------------------------------------------------------------------

    def lease(self, group: int) -> Optional[LeaseRecord]:
        return self._leases.get(group)

    def owner_of(self, group: int, now_s: float) -> Optional[int]:
        """The daemon currently holding a *valid* lease, else None."""
        lease = self._leases.get(group)
        if lease is None or not lease.valid_at(now_s):
            return None
        return lease.owner

    def owned_groups(self, owner: int) -> List[int]:
        """Groups whose standing lease names ``owner`` — expired or
        not (failover cares about the claim, not its freshness)."""
        return sorted(g for g, lease in self._leases.items()
                      if lease.owner == owner)

    def validate(self, group: int, owner: int, token: int,
                 now_s: float) -> bool:
        """The fencing check: does ``(owner, token)`` hold a live
        lease on ``group`` right now?  A stale token (the daemon was
        deposed), a foreign owner, or an expired lease all fail."""
        lease = self._leases.get(group)
        return (lease is not None and lease.owner == owner and
                lease.token == token and lease.valid_at(now_s))

    # -- protocol -----------------------------------------------------------------

    def acquire(self, group: int, owner: int,
                now_s: float) -> Optional[LeaseRecord]:
        """Take the group if it is unleased or its lease has expired.
        Returns the new lease (with a fresh fencing token), or None
        while a live lease stands in the way."""
        current = self._leases.get(group)
        if current is not None and current.valid_at(now_s):
            self.stats.acquire_rejects += 1
            return None
        token = self._next_token
        self._next_token += 1
        lease = LeaseRecord(group=group, owner=owner, token=token,
                            acquired_s=now_s, renewed_s=now_s,
                            expires_s=now_s + self.duration_s)
        self._leases[group] = lease
        self.stats.acquires += 1
        self.log.append("acquire", group, owner, token, now_s,
                        expires_s=lease.expires_s)
        rec = get_recorder()
        if rec.enabled:
            rec.counter("ha", "lease_acquires")
        return lease

    def renew(self, group: int, owner: int, token: int,
              now_s: float) -> bool:
        """Extend a held lease.  Rejected when the caller was deposed
        (fencing), when the lease already expired (the caller must
        re-acquire and take a new token), or when the renewal's clock
        reading runs *backwards* past the last renewal — a skewed
        clock must never stretch a lease it could not have observed."""
        lease = self._leases.get(group)
        result = "ok"
        if (lease is None or lease.owner != owner or
                lease.token != token):
            self.stats.renewals_rejected_fenced += 1
            result = "fenced"
        elif now_s < lease.renewed_s:
            self.stats.renewals_rejected_skew += 1
            result = "skew"
        elif not lease.valid_at(now_s):
            self.stats.renewals_rejected_expired += 1
            result = "expired"
        else:
            self._leases[group] = replace(
                lease, renewed_s=now_s,
                expires_s=now_s + self.duration_s)
            self.stats.renewals += 1
            self.log.append("renew", group, owner, token, now_s,
                            expires_s=now_s + self.duration_s)
        rec = get_recorder()
        if rec.enabled:
            rec.counter("ha", "lease_renewals", result=result)
        return result == "ok"

    def release(self, group: int, owner: int, token: int,
                now_s: float) -> bool:
        """Voluntarily give the group up (clean shutdown path)."""
        lease = self._leases.get(group)
        if lease is None or lease.owner != owner or \
                lease.token != token:
            return False
        del self._leases[group]
        self.stats.releases += 1
        self.log.append("release", group, owner, token, now_s)
        return True

    def commit(self, group: int, owner: int, token: int, now_s: float,
               payload: Dict[str, object]) -> Optional[ControlEvent]:
        """Durably commit a decision under the caller's lease.  This
        is the fencing gate on the write path: a stale token or an
        expired lease means the event is **rejected**, not logged —
        the deposed daemon's in-flight write never lands."""
        if not self.validate(group, owner, token, now_s):
            self.stats.fenced_writes += 1
            rec = get_recorder()
            if rec.enabled:
                rec.counter("ha", "fenced_writes")
            return None
        self.stats.commits += 1
        return self.log.append("commit", group, owner, token, now_s,
                               expires_s=self._leases[group].expires_s,
                               payload=payload)

    # -- durability ---------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Checkpoint section: leases + token counter + the control
        seq the state is current as of (replay resumes past it)."""
        return {
            "next_token": self._next_token,
            "control_seq": self.log.last_seq,
            "leases": [
                {"group": l.group, "owner": l.owner, "token": l.token,
                 "acquired_s": l.acquired_s, "renewed_s": l.renewed_s,
                 "expires_s": l.expires_s}
                for l in sorted(self._leases.values(),
                                key=lambda l: l.group)],
        }

    def restore(self, state: Dict[str, object]) -> int:
        """Conservative restore: adopt a checkpointed state, then
        replay every control event past its ``control_seq``.  Returns
        the number of events replayed.  Ownership is *not* resumed by
        restoring — a restarted daemon must still validate (and on
        failure re-acquire), so an ambiguous crash can only lose a
        lease early, never keep one too long."""
        self._leases = {
            int(doc["group"]): LeaseRecord(
                group=int(doc["group"]), owner=int(doc["owner"]),
                token=int(doc["token"]),
                acquired_s=float(doc["acquired_s"]),
                renewed_s=float(doc["renewed_s"]),
                expires_s=float(doc["expires_s"]))
            for doc in state.get("leases", [])}
        self._next_token = int(state.get("next_token", 1))
        tail = self.log.events_since(int(state.get("control_seq", 0)))
        for event in tail:
            self._apply(event)
        return len(tail)

    def replay(self) -> None:
        """Rebuild the whole table from the control log alone."""
        self._leases = {}
        self._next_token = 1
        for event in self.log.events:
            self._apply(event)

    def _apply(self, event: ControlEvent) -> None:
        if event.kind == "acquire":
            self._leases[event.group] = LeaseRecord(
                group=event.group, owner=event.owner,
                token=event.token, acquired_s=event.time_s,
                renewed_s=event.time_s, expires_s=event.expires_s)
        elif event.kind == "renew":
            lease = self._leases.get(event.group)
            if lease is not None and lease.token == event.token:
                self._leases[event.group] = replace(
                    lease, renewed_s=event.time_s,
                    expires_s=event.expires_s)
        elif event.kind == "release":
            lease = self._leases.get(event.group)
            if lease is not None and lease.token == event.token:
                del self._leases[event.group]
        if event.token >= self._next_token:
            self._next_token = event.token + 1


def verify_control_log(events: List[ControlEvent]
                       ) -> Tuple[int, int]:
    """Independent safety audit of a control log.

    Re-derives lease validity from the ownership events alone and
    checks every ``commit`` against it.  Returns
    ``(double_commits, expired_lease_commits)`` — both must be zero:

    * a *double commit* is two ``placed`` commits for the same job id
      with no release in between (the placement was applied twice);
    * an *expired-lease commit* is a commit whose ``(owner, token)``
      did not hold a live lease on the commit's group at the commit's
      timestamp (the runtime fencing gate should have rejected it).
    """
    table = LeaseTable(duration_s=1.0)   # duration comes from events
    double_commits = 0
    expired = 0
    placed_jobs: Dict[object, int] = {}
    for event in events:
        if event.kind != "commit":
            table._apply(event)
            continue
        lease = table._leases.get(event.group)
        if (lease is None or lease.owner != event.owner or
                lease.token != event.token or
                event.time_s >= lease.expires_s):
            expired += 1
        status = event.payload.get("status")
        job = event.payload.get("job")
        if status == "placed":
            if job in placed_jobs:
                double_commits += 1
            placed_jobs[job] = event.seq
        elif status == "released":
            placed_jobs.pop(job, None)
    return double_commits, expired
