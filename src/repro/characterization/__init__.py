"""Real-system characterization substrate (Section II): synthetic
module population, margin testbench, thermal model, latency-margin
search, and margin-variability Monte Carlo."""

from .crosstech import (backend_performance_model, characterize_backend,
                        compare_backends, placement_comparison)
from .drift import (AgingDrift, CompositeDrift, DRIFT_SCENARIOS,
                    DiurnalDrift, DriftModel, MARGIN_LOSS_MTS_PER_DOUBLING,
                    MAX_DRIFT_AMBIENT_C, ThermalRampDrift, clamp_ambient_c,
                    make_drift, thermal_margin_loss_mts)
from .margins import (CONSERVATIVE_MARGINS, LatencyMarginSearch,
                      conservative_setting, exhaustive_test_count)
from .modules import (IN_PRODUCTION_RANGE, ModulePopulation, STUDY_CHIPS,
                      STUDY_MODULES, SyntheticModule,
                      THERMAL_BOOT_FAILURES)
from .montecarlo import (CHANNELS_PER_NODE, MarginDistribution,
                         MarginMonteCarlo, MODULE_MARGIN_MEAN,
                         MODULE_MARGIN_STDEV, MODULES_PER_CHANNEL)
from .stress import (ACCESSES_PER_TEST, PASS_FRACTION, StressResult,
                     StressTester)
from .temperature import (CHAMBER_AMBIENT_C, FREQ_LAT_MARGIN_45C_MULTIPLIER,
                          FREQ_MARGIN_45C_MULTIPLIER, ROOM_AMBIENT_C,
                          TrinititeSampler, dimm_temperature_c,
                          error_rate_multiplier, trinitite_percentile)
from .testbench import (BootFailure, ErrorRateMeasurement,
                        MarginMeasurement, PLATFORM_CAP_MTS, TestMachine,
                        measure_population)

__all__ = [
    "ACCESSES_PER_TEST", "AgingDrift", "BootFailure", "CHAMBER_AMBIENT_C",
    "CHANNELS_PER_NODE", "CONSERVATIVE_MARGINS", "CompositeDrift",
    "DRIFT_SCENARIOS", "DiurnalDrift", "DriftModel", "ErrorRateMeasurement",
    "FREQ_LAT_MARGIN_45C_MULTIPLIER", "FREQ_MARGIN_45C_MULTIPLIER",
    "IN_PRODUCTION_RANGE", "LatencyMarginSearch",
    "MARGIN_LOSS_MTS_PER_DOUBLING", "MAX_DRIFT_AMBIENT_C",
    "MODULES_PER_CHANNEL", "MODULE_MARGIN_MEAN", "MODULE_MARGIN_STDEV",
    "MarginDistribution", "MarginMeasurement", "MarginMonteCarlo",
    "ModulePopulation", "PASS_FRACTION", "PLATFORM_CAP_MTS",
    "ROOM_AMBIENT_C", "STUDY_CHIPS", "STUDY_MODULES", "StressResult",
    "StressTester", "SyntheticModule", "THERMAL_BOOT_FAILURES",
    "TestMachine", "ThermalRampDrift", "TrinititeSampler",
    "backend_performance_model", "characterize_backend",
    "clamp_ambient_c", "compare_backends", "conservative_setting",
    "dimm_temperature_c", "placement_comparison",
    "error_rate_multiplier", "exhaustive_test_count", "make_drift",
    "measure_population", "thermal_margin_loss_mts",
    "trinitite_percentile",
]
