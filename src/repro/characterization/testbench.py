"""Software test machine reproducing the Section II-A measurement flow.

The paper's rig is an unlocked Xeon W-3175X on a C621 board: install
one module, raise the data rate in 200 MT/s BIOS steps at 1.2 V, and
record the highest rate at which 99.999%+ of accesses are correct.
Two platform behaviours observed in the paper are modelled explicitly:

* a system-level cap near 4000 MT/s (no 3200 MT/s module ever ran
  faster, even at 1.35 V, while 22 of the 27 sub-4000 modules did
  improve at 1.35 V), and
* thermal-chamber behaviour: some modules lose one step of margin at a
  45 C ambient and nine specific modules fail to boot there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dram.timing import (DATA_RATE_STEP_MTS, DDR4_ELEVATED_VOLTAGE,
                           DDR4_STANDARD_VOLTAGE)
from .modules import SyntheticModule
from .stress import StressTester
from .temperature import (ROOM_AMBIENT_C, error_rate_multiplier)

#: System-level data-rate ceiling of the test platform (Section II-A).
PLATFORM_CAP_MTS = 4000


class BootFailure(Exception):
    """The module did not boot at the requested configuration."""


@dataclass
class MarginMeasurement:
    """Result of characterizing one module."""
    module_id: str
    spec_rate_mts: int
    margin_mts: int               # highest error-free step minus spec
    max_bootable_mts: int
    hit_platform_cap: bool
    tests_run: int

    @property
    def margin_fraction(self) -> float:
        return self.margin_mts / self.spec_rate_mts


@dataclass
class ErrorRateMeasurement:
    """One-hour stress-test error counts at the highest bootable rate."""
    module_id: str
    data_rate_mts: int
    ambient_c: float
    with_latency_margin: bool
    corrected_errors: float
    uncorrected_errors: float


class TestMachine:
    """The characterization rig (one module installed at a time)."""

    def __init__(self, platform_cap_mts: int = PLATFORM_CAP_MTS,
                 seed: int = 99):
        self.platform_cap_mts = platform_cap_mts
        self.tester = StressTester(seed=seed)

    # -- margin measurement -------------------------------------------------------

    def effective_margin(self, module: SyntheticModule,
                         voltage: float = DDR4_STANDARD_VOLTAGE,
                         ambient_c: float = ROOM_AMBIENT_C) -> float:
        """Hidden true margin under the given conditions (model side)."""
        margin = module.true_margin_mts
        if voltage >= DDR4_ELEVATED_VOLTAGE:
            margin += module.voltage_uplift_mts
        if ambient_c > ROOM_AMBIENT_C + 10:
            margin -= module.margin_drop_at_45c_mts
        return margin

    def boots_at(self, module: SyntheticModule, data_rate_mts: int,
                 voltage: float = DDR4_STANDARD_VOLTAGE,
                 ambient_c: float = ROOM_AMBIENT_C) -> bool:
        """Does the system POST with this module at this data rate?"""
        if data_rate_mts > self.platform_cap_mts:
            return False
        if ambient_c > ROOM_AMBIENT_C + 10 and module.fails_boot_at_45c \
                and data_rate_mts > module.spec.spec_data_rate_mts:
            return False
        boot_margin = module.boot_margin_mts
        if voltage >= DDR4_ELEVATED_VOLTAGE:
            boot_margin += module.voltage_uplift_mts
        return data_rate_mts <= module.spec.spec_data_rate_mts + boot_margin

    def measure_margin(self, module: SyntheticModule,
                       voltage: float = DDR4_STANDARD_VOLTAGE,
                       ambient_c: float = ROOM_AMBIENT_C
                       ) -> MarginMeasurement:
        """Step the data rate up in 200 MT/s increments; the margin is
        the highest step at which the stress test still passes."""
        spec = module.spec.spec_data_rate_mts
        true_margin = self.effective_margin(module, voltage, ambient_c)
        best = spec
        max_boot = spec
        tests_before = self.tester.tests_run
        rate = spec
        while True:
            rate += DATA_RATE_STEP_MTS
            if not self.boots_at(module, rate, voltage, ambient_c):
                break
            max_boot = rate
            result = self.tester.run(
                rate, spec, true_margin,
                rate_multiplier=error_rate_multiplier(ambient_c, False))
            if result.passed:
                best = rate
            else:
                break
        return MarginMeasurement(
            module_id=module.module_id,
            spec_rate_mts=spec,
            margin_mts=best - spec,
            max_bootable_mts=max_boot,
            hit_platform_cap=(max_boot >= self.platform_cap_mts),
            tests_run=self.tester.tests_run - tests_before)

    # -- error-rate measurement ------------------------------------------------------

    def measure_error_rates(self, module: SyntheticModule,
                            ambient_c: float = ROOM_AMBIENT_C,
                            with_latency_margin: bool = False
                            ) -> Optional[ErrorRateMeasurement]:
        """One-hour stress test at the module's highest bootable rate
        (Section II-C).  Returns None when the module fails to boot at
        that rate in the given ambient (the chamber's boot failures)."""
        rate = module.spec.spec_data_rate_mts + int(
            min(module.boot_margin_mts,
                self.platform_cap_mts - module.spec.spec_data_rate_mts)
            // DATA_RATE_STEP_MTS * DATA_RATE_STEP_MTS)
        if not self.boots_at(module, rate, ambient_c=ambient_c):
            return None
        mult = error_rate_multiplier(ambient_c, with_latency_margin)
        lat_factor = 1.6 if with_latency_margin else 1.0
        return ErrorRateMeasurement(
            module_id=module.module_id,
            data_rate_mts=rate,
            ambient_c=ambient_c,
            with_latency_margin=with_latency_margin,
            corrected_errors=module.ce_rate_per_hour * mult * lat_factor,
            uncorrected_errors=module.ue_rate_per_hour * mult * lat_factor)

    # -- full system ----------------------------------------------------------------

    def measure_full_population_margin(
            self, modules: List[SyntheticModule]) -> int:
        """All channels and slots populated: the memory system's margin
        is the slowest module's margin, and per-module error rates
        halve because each module is accessed half as often
        (Section II-C)."""
        margins = [self.measure_margin(m).margin_mts for m in modules]
        return min(margins) if margins else 0


def measure_population(modules: List[SyntheticModule],
                       machine: Optional[TestMachine] = None
                       ) -> Dict[str, MarginMeasurement]:
    """Characterize every module on one machine; returns per-module
    measurements keyed by module id."""
    machine = machine or TestMachine()
    return {m.module_id: machine.measure_margin(m) for m in modules}
