"""Cross-technology margin pipeline: the Section II characterization
and the Hetero-DMR placement study rerun per memory backend.

The paper quantifies DDR4 frequency margin; the same methodology
transfers to any technology whose module margins are normally
distributed.  For each registered backend this module:

1. draws a seeded synthetic module population from the backend's
   margin distribution and buckets nodes into the backend's own
   scheduler classes (``MarginMonteCarlo``);
2. measures node-level Hetero-DMR speedups at the backend's margin
   rungs with the *cycle* engine (``ExperimentRunner(backend=...)``),
   building a :class:`~repro.hpc.simulator.PerformanceModel` keyed by
   those rungs; and
3. replays one synthetic job trace through the conventional system and
   the margin-aware system (scheduler classes = backend buckets).

:func:`compare_backends` runs the pipeline over several backends and
emits one deterministic comparison artifact — no wall-clock, no host
fields — so CI can run it twice and ``cmp`` the outputs
(``repro backend compare``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

# The system-simulation imports (hpc, sim) stay inside the functions:
# ``repro.core`` imports this package at module scope and ``repro.hpc``
# imports ``repro.core``, so top-level imports here would be circular.
from ..dram.backend import get_backend, resolve_backend
from .montecarlo import MarginMonteCarlo

__all__ = ["backend_performance_model", "characterize_backend",
           "compare_backends", "placement_comparison"]

#: Figure 12 usage bucket -> the system model's job memory bucket.
_BUCKET_TO_JOB = {"0-25": "under_25", "25-50": "25_to_50",
                  "50-100": "over_50"}


def characterize_backend(backend: Optional[str] = None,
                         trials: int = 4000,
                         seed: int = 2026) -> dict:
    """Section II / III-D characterization for one backend: seeded
    module-margin Monte Carlo bucketed into the backend's scheduler
    classes.  Deterministic for a given (backend, trials, seed)."""
    name = resolve_backend(backend)
    b = get_backend(name)
    mc = MarginMonteCarlo(mean_mts=b.margin_mean_mts,
                          stdev_mts=b.margin_stdev_mts, seed=seed)
    fractions = mc.node_group_fractions(trials,
                                        buckets=b.margin_buckets)
    channels = mc.channel_margins(trials)
    return {
        "backend": name,
        "spec_data_rate_mts": b.spec_data_rate_mts,
        "margin_buckets": list(b.margin_buckets),
        "rank_mux_factor": b.rank_mux_factor,
        "mux_latency_ns": b.mux_latency_ns,
        "module_margin_mean_mts": b.margin_mean_mts,
        "module_margin_stdev_mts": b.margin_stdev_mts,
        "trials": trials,
        "seed": seed,
        "node_group_fractions": {
            str(k): round(v, 6) for k, v in fractions.items()},
        "channel_fraction_at_bucket": {
            str(m): round(channels.fraction_at_least(m), 6)
            for m in b.margin_buckets},
    }


def backend_performance_model(backend: Optional[str] = None,
                              refs_per_core: int = 1500,
                              seed: int = 12345,
                              design: str = "hetero-dmr",
                              hierarchy: str = "Hierarchy1",
                              suites: Optional[Sequence[str]] = None,
                              read_error_rate: float = 0.0,
                              transition_fault_rate: float = 0.0
                              ) -> PerformanceModel:
    """Node-level Hetero-DMR speedups at the backend's margin rungs,
    measured with the cycle engine (the fast tier would need a
    per-backend calibration artifact; the comparison pipeline measures
    instead of predicting).

    Utilization resolves the effective design exactly as a node
    simulation would, so the >=50% bucket collapses to 1.0 on its own
    rather than by special-casing.  The fault-injection knobs flow into
    the margin cells (spec-only cells cannot fault), so a degraded
    fleet's system model reflects retry/transition overheads instead of
    clean-node speedups.
    """
    from ..analysis.stats import suite_average
    from ..cache.hierarchy import HIERARCHIES
    from ..hpc.simulator import PerformanceModel
    from ..sim.node import effective_design
    from ..sim.runner import BUCKET_UTILIZATION, ExperimentRunner
    from ..workloads.registry import suite_names
    name = resolve_backend(backend)
    b = get_backend(name)
    suites = tuple(suites) if suites else tuple(suite_names())
    hier = HIERARCHIES[hierarchy]()
    runner = ExperimentRunner(refs_per_core=refs_per_core, seed=seed,
                              fidelity="cycle", backend=name)
    base = {s: runner.baseline(s, hier).time_ns for s in suites}
    speedups: Dict[int, Dict[str, float]] = {}
    for margin in b.margin_buckets:
        table: Dict[str, float] = {}
        for bucket, util in BUCKET_UTILIZATION.items():
            eff = effective_design(design, util)
            per_suite = {
                s: base[s] / runner.run(
                    s, hier, eff, margin_mts=margin,
                    memory_utilization=util,
                    read_error_rate=read_error_rate,
                    transition_fault_rate=transition_fault_rate
                    ).time_ns
                for s in suites}
            table[_BUCKET_TO_JOB[bucket]] = suite_average(per_suite)
        speedups[margin] = table
    speedups[0] = {b_: 1.0 for b_ in _BUCKET_TO_JOB.values()}
    return PerformanceModel(speedups=speedups)


def placement_comparison(backend: Optional[str],
                         model: "PerformanceModel",
                         group_fractions: Dict[int, float],
                         total_nodes: int = 200,
                         job_count: int = 400,
                         seed: int = 2026) -> dict:
    """One trace through the conventional system and the margin-aware
    system whose scheduler classes are the backend's buckets."""
    from ..hpc.cluster import Cluster
    from ..hpc.scheduler import (EasyBackfillScheduler,
                                 MarginAwareAllocationPolicy)
    from ..hpc.simulator import CONVENTIONAL_MODEL, SystemSimulator
    from ..hpc.traces import TraceConfig, generate_trace
    b = get_backend(backend)
    buckets = tuple(b.margin_buckets) + (0,)
    trace = generate_trace(TraceConfig(total_nodes=total_nodes,
                                       job_count=job_count, seed=seed))
    conventional = SystemSimulator(
        Cluster(total_nodes, group_fractions=group_fractions,
                seed=seed),
        performance=CONVENTIONAL_MODEL).run(trace)
    margin_aware = SystemSimulator(
        Cluster(total_nodes, group_fractions=group_fractions,
                seed=seed),
        scheduler=EasyBackfillScheduler(
            MarginAwareAllocationPolicy(buckets=buckets)),
        performance=model).run(trace)
    return {
        "conventional": _metrics(conventional, total_nodes),
        "margin_aware": _metrics(margin_aware, total_nodes),
        "mean_turnaround_improvement": round(
            conventional.mean_turnaround_s()
            / margin_aware.mean_turnaround_s(), 6),
        "mean_execution_improvement": round(
            conventional.mean_execution_s()
            / margin_aware.mean_execution_s(), 6),
    }


def compare_backends(backends: Sequence[str] = ("ddr4", "mrdimm"),
                     refs_per_core: int = 1500,
                     trials: int = 4000,
                     total_nodes: int = 200,
                     job_count: int = 400,
                     seed: int = 2026) -> dict:
    """The full cross-technology study: characterization + node
    speedups + placement, per backend, in one deterministic artifact.

    The first backend is the comparison baseline (DDR4 by canonical
    ordering); every other backend gets a relative row.
    """
    names = [resolve_backend(n) for n in backends]
    if len(set(names)) != len(names):
        raise ValueError("duplicate backends: {}".format(
            ", ".join(names)))
    report: Dict[str, object] = {
        "report": "backend_compare",
        "seed": seed,
        "refs_per_core": refs_per_core,
        "trials": trials,
        "total_nodes": total_nodes,
        "job_count": job_count,
        "backends": {},
    }
    per_backend: Dict[str, dict] = {}
    for name in names:
        character = characterize_backend(name, trials=trials, seed=seed)
        model = backend_performance_model(name,
                                          refs_per_core=refs_per_core,
                                          seed=12345)
        fractions = {int(k): v for k, v in
                     character["node_group_fractions"].items()}
        # Re-normalize the rounded fractions so Cluster's sum check
        # cannot trip on artifact-rounding residue.
        norm = sum(fractions.values())
        fractions = {k: v / norm for k, v in fractions.items()}
        placement = placement_comparison(
            name, model, fractions, total_nodes=total_nodes,
            job_count=job_count, seed=seed)
        entry = dict(character)
        entry["node_speedups"] = {
            str(m): {k: round(v, 6) for k, v in sorted(t.items())}
            for m, t in sorted(model.speedups.items())}
        entry["system"] = placement
        per_backend[name] = entry
        report["backends"][name] = entry
    baseline = names[0]
    comparison: Dict[str, dict] = {}
    for name in names[1:]:
        a, b_ = per_backend[baseline], per_backend[name]
        comparison[name] = {
            "vs": baseline,
            "spec_data_rate_ratio": round(
                b_["spec_data_rate_mts"] / a["spec_data_rate_mts"], 6),
            "turnaround_improvement_delta": round(
                b_["system"]["mean_turnaround_improvement"]
                - a["system"]["mean_turnaround_improvement"], 6),
            "top_bucket_fraction_delta": round(
                b_["node_group_fractions"][
                    str(b_["margin_buckets"][0])]
                - a["node_group_fractions"][
                    str(a["margin_buckets"][0])], 6),
        }
    report["comparison"] = comparison
    return report


def _metrics(result, total_nodes: int) -> dict:
    return {
        "mean_execution_s": round(result.mean_execution_s(), 3),
        "mean_queue_delay_s": round(result.mean_queue_delay_s(), 3),
        "mean_turnaround_s": round(result.mean_turnaround_s(), 3),
        "p95_turnaround_s": round(
            result.percentile_turnaround_s(0.95), 3),
        "mean_bounded_slowdown": round(
            result.mean_bounded_slowdown(), 6),
        "node_utilization": round(
            result.node_utilization(total_nodes), 6),
    }
