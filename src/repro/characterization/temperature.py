"""Thermal model for the characterization (Sections II-A and II-C).

Maps ambient temperature to on-DIMM temperature and scales error rates,
using the paper's measured anchor points:

* 23 C ambient -> 43 C idle / 53 C active DIMM temperature;
* 45 C ambient (thermal chamber) -> 60 C active DIMM temperature;
* error rates at 45 C are 4x the 23 C rates when exploiting frequency
  margin alone, and 2x when exploiting frequency+latency margins;
* LANL Trinitite reference distribution: minimum 16 C; our 43/53 C
  idle/active temperatures exceed 99% / 99.85% of its measurements,
  and 60 C exceeds 99.991%.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

#: Measured anchor ambient temperatures (degrees C).
ROOM_AMBIENT_C = 23.0
CHAMBER_AMBIENT_C = 45.0

#: Error-rate multipliers at 45 C relative to 23 C (Section II-C).
FREQ_MARGIN_45C_MULTIPLIER = 4.0
FREQ_LAT_MARGIN_45C_MULTIPLIER = 2.0

#: DDR4 maximum operating temperature (JEDEC).
MAX_OPERATING_C = 95.0


def dimm_temperature_c(ambient_c: float, active: bool = True) -> float:
    """On-DIMM temperature for a given ambient.

    Linear in ambient with the offsets measured on the test machine:
    idle = ambient + 20 C; active = ambient + 30 C at 23 C ambient,
    slightly compressed at 45 C (60 C measured, i.e. +15 C), modelled
    as a mild saturation of the self-heating term.
    """
    offset = 30.0 if active else 20.0
    # Self-heating shrinks as ambient rises (fans spin up): the two
    # active anchors (23->53, 45->60) give a -0.68 C/C slope.
    compression = 0.68 * max(0.0, ambient_c - ROOM_AMBIENT_C)
    return ambient_c + max(5.0, offset - compression)


def error_rate_multiplier(ambient_c: float,
                          with_latency_margin: bool) -> float:
    """Scale factor on error rates relative to 23 C ambient.

    Exponential (Arrhenius-like) interpolation through the paper's two
    anchors: 1x at 23 C and 4x (or 2x with latency margins) at 45 C.
    """
    anchor = (FREQ_LAT_MARGIN_45C_MULTIPLIER if with_latency_margin
              else FREQ_MARGIN_45C_MULTIPLIER)
    exponent = (ambient_c - ROOM_AMBIENT_C) / (CHAMBER_AMBIENT_C -
                                               ROOM_AMBIENT_C)
    return anchor ** exponent


def trinitite_percentile(dimm_temp_c: float) -> float:
    """Fraction of the LANL Trinitite temperature measurements that lie
    below ``dimm_temp_c`` (fit to the paper's reported percentiles:
    16 C minimum, 43 C ~ p99, 53 C ~ p99.85, 60 C ~ p99.991)."""
    if dimm_temp_c <= 16.0:
        return 0.0
    # Log-linear fit through the three upper anchors.
    anchors = [(43.0, 0.99), (53.0, 0.9985), (60.0, 0.99991)]
    if dimm_temp_c >= anchors[-1][0]:
        return anchors[-1][1]
    prev_t, prev_p = 16.0, 0.0
    for t, p in anchors:
        if dimm_temp_c <= t:
            frac = (dimm_temp_c - prev_t) / (t - prev_t)
            return prev_p + frac * (p - prev_p)
        prev_t, prev_p = t, p
    return anchors[-1][1]


@dataclass
class TrinititeSampler:
    """Synthetic stand-in for the three million LANL on-DIMM sensor
    measurements: a right-skewed distribution with 16 C minimum whose
    upper tail matches the paper's percentiles."""
    seed: int = 7

    def sample(self, n: int) -> List[float]:
        rng = random.Random(self.seed)
        out = []
        for _ in range(n):
            # Log-normal-ish body over [16, ~60].
            v = 16.0 + 14.0 * math.exp(rng.gauss(0.0, 0.55))
            out.append(min(v, 75.0))
        return out
