"""Synthetic population of the 119 characterized server RDIMMs.

The physical modules of Section II are unavailable, so this module
builds a deterministic synthetic population whose *measured* statistics
reproduce every number the paper reports (see DESIGN.md's substitution
table):

* 119 modules, 3006 chips, four brands: A (40), B (35), C (28) are the
  major manufacturers; D (16) is the small module-only vendor.
* Brands A-C average 770 MT/s (27%) of margin; brand D averages
  ~213 MT/s (2.6x lower).
* 44 modules are 3200 MT/s with 9 chips/rank; 36 of them reach the
  test platform's 4000 MT/s cap and none exceed it; the rest bottom
  out at 600 MT/s (the paper's observed minimum for 9 chips/rank).
* 18-chips/rank modules spread ~2.1x wider than 9-chips/rank ones.
* 2400 MT/s modules average ~967 MT/s of margin.
* modules A8-A31 were borrowed from a three-years-old in-production
  cluster; a few others are refurbished; aging shows no margin effect.
* nine named modules (A3, A40, A55, B12, B19, C3, C6, C10, C12) fail
  to boot at their margin in a 45 C ambient.

Each synthetic module carries a hidden *true* margin (continuous) plus
a boot margin and error-rate parameters; the testbench *measures* the
true margin through the same 200 MT/s-step procedure the paper uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dram.module import ModuleSpec

#: Study scale reported in Table I.
STUDY_MODULES = 119
STUDY_CHIPS = 3006

#: Modules that fail to boot at 45 C ambient (Figure 6 caption).
THERMAL_BOOT_FAILURES = ("A3", "A40", "A55", "B12", "B19", "C3", "C6",
                         "C10", "C12")

#: Modules borrowed from an in-production cluster (not thermal-tested).
IN_PRODUCTION_RANGE = ("A", 8, 31)


@dataclass
class SyntheticModule:
    """One characterized module: spec sheet + hidden ground truth."""
    module_id: str
    spec: ModuleSpec
    true_margin_mts: float          # error-free for 99.999%+ accesses
    boot_margin_mts: float          # highest rate that still boots
    voltage_uplift_mts: float       # extra margin at 1.35 V
    ce_rate_per_hour: float         # corrected errors at boot margin, 23 C
    ue_rate_per_hour: float         # uncorrected errors at boot margin, 23 C
    margin_drop_at_45c_mts: float = 0.0
    fails_boot_at_45c: bool = False

    @property
    def brand(self) -> str:
        return self.spec.brand

    @property
    def margin_fraction(self) -> float:
        return self.true_margin_mts / self.spec.spec_data_rate_mts


def _margin_9cpr_3200(rng: random.Random, index: int) -> float:
    """9 chips/rank, 3200 MT/s: 36 of 44 sit at/above the platform's
    4000 MT/s cap; the rest land in [600, 800)."""
    if index % 44 < 36:
        return 820.0 + rng.random() * 300.0   # capped to 800 when measured
    return 610.0 + rng.random() * 180.0


def _margin_18cpr_3200(rng: random.Random) -> float:
    """18 chips/rank, 3200 MT/s: wider spread, occasionally low."""
    value = rng.gauss(640.0, 270.0)
    return min(max(value, 220.0), 1100.0)


def _margin_2400(rng: random.Random) -> float:
    """2400 MT/s modules: ~967 MT/s average margin."""
    value = rng.gauss(980.0, 210.0)
    return min(max(value, 620.0), 1580.0)


def _margin_brand_d(rng: random.Random) -> float:
    """The small brand: 2.6x lower margins, some with none at all."""
    value = rng.gauss(260.0, 160.0)
    return min(max(value, 0.0), 520.0)


def _error_rates(rng: random.Random, margin: float) -> "tuple[float, float]":
    """CE/UE rates per hour at the highest *bootable* data rate, 23 C.

    Roughly a third of modules show zero errors in a one-hour test
    (e.g., C22-C27 in Figure 6); the rest follow a heavy-tailed
    distribution, with UEs about an order of magnitude rarer than CEs.
    """
    if rng.random() < 0.35:
        return 0.0, 0.0
    ce = 10.0 ** rng.uniform(-1.0, 3.2)
    ue = ce * 10.0 ** rng.uniform(-2.0, -0.5) if rng.random() < 0.6 else 0.0
    return ce, ue


class ModulePopulation:
    """Deterministic generator for the 119-module study population."""

    def __init__(self, seed: int = 2021):
        self.seed = seed
        self.modules: List[SyntheticModule] = []
        self._build()

    def _build(self) -> None:
        rng = random.Random(self.seed)
        counts = {"A": 55, "B": 28, "C": 20, "D": 16}
        idx_9cpr_3200 = 0
        for brand, count in counts.items():
            for i in range(1, count + 1):
                module_id = "{}{}".format(brand, i)
                if brand == "D":
                    spec = ModuleSpec(brand=brand, spec_data_rate_mts=3200,
                                      chips_per_rank=18,
                                      ranks_per_module=2,
                                      chip_density_gbit=8,
                                      manufacture_year=2019 + i % 3)
                    margin = _margin_brand_d(rng)
                else:
                    kind = self._kind_for(brand, i)
                    if kind == "9cpr-3200":
                        spec = ModuleSpec(brand=brand,
                                          spec_data_rate_mts=3200,
                                          chips_per_rank=9,
                                          ranks_per_module=2 - (i % 2 == 0),
                                          chip_density_gbit=16,
                                          manufacture_year=2019 + i % 3)
                        margin = _margin_9cpr_3200(rng, idx_9cpr_3200)
                        idx_9cpr_3200 += 1
                    elif kind == "18cpr-3200":
                        spec = ModuleSpec(brand=brand,
                                          spec_data_rate_mts=3200,
                                          chips_per_rank=18,
                                          ranks_per_module=2,
                                          chip_density_gbit=8,
                                          manufacture_year=2018 + i % 4)
                        margin = _margin_18cpr_3200(rng)
                    else:
                        spec = ModuleSpec(brand=brand,
                                          spec_data_rate_mts=2400,
                                          chips_per_rank=18,
                                          ranks_per_module=2,
                                          chip_density_gbit=8,
                                          manufacture_year=2017 + i % 3)
                        margin = _margin_2400(rng)
                condition = "new"
                if brand == IN_PRODUCTION_RANGE[0] and \
                        IN_PRODUCTION_RANGE[1] <= i <= IN_PRODUCTION_RANGE[2]:
                    condition = "in-production"
                elif brand == "B" and i % 11 == 0:
                    condition = "refurbished"
                spec = ModuleSpec(brand=spec.brand,
                                  spec_data_rate_mts=spec.spec_data_rate_mts,
                                  chips_per_rank=spec.chips_per_rank,
                                  ranks_per_module=spec.ranks_per_module,
                                  chip_density_gbit=spec.chip_density_gbit,
                                  manufacture_year=spec.manufacture_year,
                                  condition=condition)
                ce, ue = _error_rates(rng, margin)
                self.modules.append(SyntheticModule(
                    module_id=module_id,
                    spec=spec,
                    true_margin_mts=margin,
                    boot_margin_mts=margin + 150.0 + rng.random() * 250.0,
                    voltage_uplift_mts=200.0 + rng.random() * 300.0,
                    ce_rate_per_hour=ce,
                    ue_rate_per_hour=ue,
                    margin_drop_at_45c_mts=self._thermal_drop(
                        rng, module_id),
                    fails_boot_at_45c=module_id in THERMAL_BOOT_FAILURES,
                ))

    @staticmethod
    def _kind_for(brand: str, i: int) -> str:
        """Assign organization: 44 modules are 9-chips/rank 3200 MT/s,
        31 are 18-chips/rank 3200 MT/s, 28 are 2400 MT/s (brands A-C
        total 103).  A multiplicative shuffle (29 is coprime with 103)
        interleaves the classes across brands so per-brand averages
        stay similar, as the paper reports for brands A-C."""
        position = {"A": 0, "B": 55, "C": 83}[brand] + (i - 1)
        shuffled = (position * 29) % 103
        if shuffled < 44:
            return "9cpr-3200"
        if shuffled < 75:
            return "18cpr-3200"
        return "2400"

    @staticmethod
    def _thermal_drop(rng: random.Random, module_id: str) -> float:
        """Five of 103 brand A-C modules lose margin at 45 C ambient."""
        digest = hash((module_id, "thermal")) & 0xFFFF
        return 200.0 if digest % 21 == 0 else 0.0

    # -- selections ---------------------------------------------------------------

    def by_brand(self, brand: str) -> List[SyntheticModule]:
        return [m for m in self.modules if m.brand == brand]

    def major_brands(self) -> List[SyntheticModule]:
        """Brands A-C, the modules the paper's evaluation uses."""
        return [m for m in self.modules if m.brand in ("A", "B", "C")]

    def by_chips_per_rank(self, chips: int) -> List[SyntheticModule]:
        return [m for m in self.major_brands()
                if m.spec.chips_per_rank == chips]

    def by_spec_rate(self, rate: int) -> List[SyntheticModule]:
        return [m for m in self.major_brands()
                if m.spec.spec_data_rate_mts == rate]

    def by_condition(self, condition: str) -> List[SyntheticModule]:
        return [m for m in self.major_brands()
                if m.spec.condition == condition]

    def thermal_chamber_set(self) -> List[SyntheticModule]:
        """Modules tested at 45 C: brands A-C minus the borrowed
        in-production modules A8-A31."""
        out = []
        for m in self.major_brands():
            if m.spec.condition == "in-production":
                continue
            out.append(m)
        return out

    def get(self, module_id: str) -> SyntheticModule:
        for m in self.modules:
            if m.module_id == module_id:
                return m
        raise KeyError("no module {!r}".format(module_id))

    def total_chips(self) -> int:
        return sum(m.spec.total_chips for m in self.modules)
