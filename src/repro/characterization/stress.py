"""Memory stress-test model (stressapptest-style, Section II).

The paper determines a module's frequency margin by checking whether
99.999%+ of accesses complete without error during a stress test at a
candidate data rate.  Physically, error probability rises steeply once
the data rate exceeds the module's true margin; below it, errors are
(essentially) absent.  The model captures this with a sharp logistic
around the hidden true margin plus measurement noise, so repeated
measurements of one module can disagree by one 200 MT/s step — as real
margin measurements do.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

#: The pass criterion: at least this fraction of accesses correct.
PASS_FRACTION = 0.99999

#: Accesses per characterization stress test (scaled-down stand-in for
#: the paper's one-hour run).
ACCESSES_PER_TEST = 200_000


@dataclass
class StressResult:
    """Outcome of one stress test."""
    data_rate_mts: int
    accesses: int
    errors: int

    @property
    def error_fraction(self) -> float:
        return self.errors / self.accesses if self.accesses else 0.0

    @property
    def passed(self) -> bool:
        return (1.0 - self.error_fraction) >= PASS_FRACTION


class StressTester:
    """Runs stress tests against a module's hidden ground truth."""

    def __init__(self, seed: int = 99,
                 accesses_per_test: int = ACCESSES_PER_TEST):
        if accesses_per_test <= 0:
            raise ValueError("accesses_per_test must be positive")
        self._rng = random.Random(seed)
        self.accesses_per_test = accesses_per_test
        self.tests_run = 0

    def error_probability(self, overshoot_mts: float) -> float:
        """Per-access error probability when running ``overshoot_mts``
        beyond the module's true margin (negative = within margin)."""
        # Logistic in the overshoot; ~1e-7 at the margin itself and
        # saturating quickly past it (~50 MT/s scale).
        x = overshoot_mts / 50.0
        return min(1.0, 1e-7 * math.exp(max(-50.0, min(50.0, 4.0 * x))))

    def run(self, data_rate_mts: int, spec_rate_mts: int,
            true_margin_mts: float,
            rate_multiplier: float = 1.0) -> StressResult:
        """Stress one module at ``data_rate_mts``.

        ``rate_multiplier`` scales error probability (temperature, full
        population, etc.).  The number of errors is sampled from the
        per-access probability.
        """
        self.tests_run += 1
        overshoot = data_rate_mts - (spec_rate_mts + true_margin_mts)
        # Margin jitter: each test sees slightly different conditions.
        overshoot += self._rng.gauss(0.0, 15.0)
        p = min(1.0, self.error_probability(overshoot) * rate_multiplier)
        n = self.accesses_per_test
        if p <= 0.0:
            errors = 0
        elif p * n < 50:
            # Poisson sampling for the rare-error regime.
            errors = self._poisson(p * n)
        else:
            errors = int(p * n)
        return StressResult(data_rate_mts, n, min(errors, n))

    def _poisson(self, lam: float) -> int:
        if lam <= 0:
            return 0
        # Knuth's method is fine for the small lambdas used here.
        threshold = math.exp(-lam)
        k, product = 0, self._rng.random()
        while product > threshold:
            k += 1
            product *= self._rng.random()
        return k
