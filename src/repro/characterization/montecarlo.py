"""Monte Carlo estimation of channel- and node-level margins (Fig. 11).

Section III-D: module margins are drawn from a normal distribution fit
to the measured 9-chips/rank population (following VARIUS-style prior
work); a channel holds two modules, a node twelve channels.  Under
margin-aware selection a channel runs its *best* module fast; the
node-level margin is the *minimum* across its channels.

The distribution parameters are derived from the paper's reported
fractions: 80% of modules have >=0.8 GT/s margin and ~99.7% have
>=0.6 GT/s, which pins mu ~= 890 MT/s and sigma ~= 107 MT/s for a
normal model — consistent with the measured sigma of 124 MT/s.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..analysis.stats import cdf_at_least
from ..core.margin_selection import channel_margin, node_margin

#: Normal-model parameters for 9-chips/rank module margins (MT/s).
MODULE_MARGIN_MEAN = 890.0
MODULE_MARGIN_STDEV = 107.0

#: Topology of the simulated node (Section III-D2).
MODULES_PER_CHANNEL = 2
CHANNELS_PER_NODE = 12


@dataclass
class MarginDistribution:
    """Empirical distribution of channel- or node-level margins."""
    margins_mts: List[int]

    def fraction_at_least(self, threshold_mts: float) -> float:
        return cdf_at_least(self.margins_mts, threshold_mts)

    def histogram(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for m in self.margins_mts:
            counts[m] = counts.get(m, 0) + 1
        return dict(sorted(counts.items()))


class MarginMonteCarlo:
    """Draws synthetic channels/nodes and evaluates both selection
    policies (margin-aware picks the best module; margin-unaware picks
    the first slot)."""

    def __init__(self, mean_mts: float = MODULE_MARGIN_MEAN,
                 stdev_mts: float = MODULE_MARGIN_STDEV, seed: int = 11):
        if stdev_mts <= 0:
            raise ValueError("stdev must be positive")
        self.mean_mts = mean_mts
        self.stdev_mts = stdev_mts
        self.seed = seed

    def _draw_module(self, rng: random.Random) -> float:
        return max(0.0, rng.gauss(self.mean_mts, self.stdev_mts))

    def channel_margins(self, trials: int, margin_aware: bool = True,
                        modules_per_channel: int = MODULES_PER_CHANNEL
                        ) -> MarginDistribution:
        """Distribution of channel-level margins over ``trials``
        simulated channels."""
        rng = random.Random(self.seed)
        out = []
        for _ in range(trials):
            margins = [self._draw_module(rng)
                       for _ in range(modules_per_channel)]
            out.append(channel_margin(margins, margin_aware))
        return MarginDistribution(out)

    def node_margins(self, trials: int, margin_aware: bool = True,
                     channels_per_node: int = CHANNELS_PER_NODE,
                     modules_per_channel: int = MODULES_PER_CHANNEL
                     ) -> MarginDistribution:
        """Distribution of node-level margins over ``trials`` nodes."""
        rng = random.Random(self.seed ^ 0xBEEF)
        out = []
        for _ in range(trials):
            ch_margins = []
            for _ in range(channels_per_node):
                margins = [self._draw_module(rng)
                           for _ in range(modules_per_channel)]
                ch_margins.append(channel_margin(margins, margin_aware))
            out.append(node_margin(ch_margins))
        return MarginDistribution(out)

    def node_group_fractions(self, trials: int = 20000,
                             buckets: Sequence[int] = (800, 600)
                             ) -> Dict[int, float]:
        """The margin-aware scheduler's node groups (Section III-D3):
        fractions of nodes in each margin class plus the at-spec
        class.  With the default DDR4 buckets (0.8 / 0.6 GT/s) the
        paper reports 62% / 36% / 2%; pass a backend's own buckets
        when characterizing another memory technology."""
        dist = self.node_margins(trials, margin_aware=True)
        fractions: Dict[int, float] = {}
        covered = 0.0
        for bucket in sorted(buckets, reverse=True):
            at_least = dist.fraction_at_least(bucket)
            fractions[bucket] = at_least - covered
            covered = at_least
        fractions[0] = 1.0 - covered
        return fractions
