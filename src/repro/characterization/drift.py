"""Margin drift models: the true margin as an operating condition.

The paper profiles each node's frequency margin once and treats it as a
constant, but its own Section II-C shows the margin *moves*: error
rates at 45 C ambient are 4x the 23 C rates (2x with latency margins),
and AL-DRAM / Flexible-Latency DRAM (PAPERS.md) establish that DRAM
timing slack depends on temperature and age.  This module provides the
drift side of that story for the adaptive-control subsystem
(:mod:`repro.adaptive`): a family of :class:`DriftModel`\\ s that move
a node's *hidden true margin* over simulated time, built on the
thermal anchors of :mod:`repro.characterization.temperature`.

The temperature-to-margin mapping uses the paper's own anchor: the 4x
error-rate multiplier at 45 C corresponds to roughly one 200 MT/s
ladder rung of lost margin, so margin loss is
:data:`MARGIN_LOSS_MTS_PER_DOUBLING` (100 MT/s) per doubling of the
error-rate multiplier.  Aging adds a *permanent*, monotone loss on top
(the module never gets that margin back).

Every model clamps its ambient so the modelled on-DIMM temperature
never exceeds the JEDEC :data:`MAX_OPERATING_C` (95 C): hotter ambients
in a scenario saturate rather than model physically-impossible DIMMs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from .temperature import (MAX_OPERATING_C, ROOM_AMBIENT_C,
                          dimm_temperature_c, error_rate_multiplier)

NS_PER_HOUR = 3_600_000_000_000.0

#: MT/s of true margin lost per doubling of the error-rate multiplier
#: (anchored so 45 C ambient with frequency margins alone — the
#: paper's 4x point — costs one 200 MT/s ladder rung).
MARGIN_LOSS_MTS_PER_DOUBLING = 100.0

#: Largest ambient any drift model reports: with the self-heating
#: offsets of :func:`dimm_temperature_c` (floor +5 C at high ambient)
#: this is exactly the ambient whose active DIMM temperature reaches
#: ``MAX_OPERATING_C``.
MAX_DRIFT_AMBIENT_C = MAX_OPERATING_C - 5.0


def clamp_ambient_c(ambient_c: float) -> float:
    """Clamp an ambient into the physically modelled band: no colder
    than the LANL minimum neighbourhood, and never so hot that the
    active DIMM temperature would exceed ``MAX_OPERATING_C``."""
    return min(max(ambient_c, 0.0), MAX_DRIFT_AMBIENT_C)


def thermal_margin_loss_mts(ambient_c: float,
                            with_latency_margin: bool = False) -> float:
    """True-margin loss (MT/s) attributable to temperature alone.

    Zero at (and below) room ambient; 200 MT/s at the 45 C anchor when
    exploiting frequency margin alone (multiplier 4x = two doublings),
    100 MT/s with latency margins (multiplier 2x = one doubling)."""
    ambient = clamp_ambient_c(ambient_c)
    multiplier = error_rate_multiplier(ambient, with_latency_margin)
    if multiplier <= 1.0:
        return 0.0
    return MARGIN_LOSS_MTS_PER_DOUBLING * math.log2(multiplier)


@dataclass(frozen=True)
class DriftModel:
    """Base drift model: a constant room-temperature environment.

    Subclasses override :meth:`ambient_c` (reversible, temperature
    driven) and/or :meth:`aging_loss_mts` (permanent, monotone
    non-decreasing in time).  :meth:`true_margin_mts` combines both
    into the hidden margin a node actually has at time ``t_ns``."""

    name: str = "none"

    def ambient_c(self, t_ns: float) -> float:
        """Ambient temperature at simulated time ``t_ns`` (clamped)."""
        return ROOM_AMBIENT_C

    def aging_loss_mts(self, t_ns: float) -> float:
        """Permanent margin loss accrued by time ``t_ns`` (MT/s)."""
        return 0.0

    def dimm_c(self, t_ns: float, active: bool = True) -> float:
        """On-DIMM temperature at ``t_ns`` (never above JEDEC max)."""
        return min(dimm_temperature_c(self.ambient_c(t_ns), active),
                   MAX_OPERATING_C)

    def true_margin_mts(self, base_margin_mts: int, t_ns: float,
                        with_latency_margin: bool = False) -> int:
        """The node's hidden true margin at ``t_ns``: the profiled
        base minus thermal and aging losses, floored at zero."""
        loss = thermal_margin_loss_mts(self.ambient_c(t_ns),
                                       with_latency_margin)
        loss += max(0.0, self.aging_loss_mts(t_ns))
        return max(0, int(round(base_margin_mts - loss)))


@dataclass(frozen=True)
class ThermalRampDrift(DriftModel):
    """A machine-room excursion: ambient ramps linearly from room to
    ``peak_ambient_c`` over ``[start_ns, peak_ns]``, then back down
    over ``[peak_ns, end_ns]`` (a failed CRAC unit being repaired)."""

    name: str = "ramp"
    start_ns: float = 0.0
    peak_ns: float = 0.5 * NS_PER_HOUR
    end_ns: float = 1.0 * NS_PER_HOUR
    peak_ambient_c: float = 41.0

    def __post_init__(self) -> None:
        if not self.start_ns <= self.peak_ns <= self.end_ns:
            raise ValueError("ramp spans must be ordered")

    def ambient_c(self, t_ns: float) -> float:
        if t_ns <= self.start_ns or t_ns >= self.end_ns:
            return ROOM_AMBIENT_C
        if t_ns <= self.peak_ns:
            span = self.peak_ns - self.start_ns
            frac = (t_ns - self.start_ns) / span if span else 1.0
        else:
            span = self.end_ns - self.peak_ns
            frac = (self.end_ns - t_ns) / span if span else 1.0
        ambient = ROOM_AMBIENT_C + frac * (self.peak_ambient_c -
                                           ROOM_AMBIENT_C)
        return clamp_ambient_c(ambient)


@dataclass(frozen=True)
class DiurnalDrift(DriftModel):
    """A day/night cycle: ambient swings sinusoidally above room by up
    to ``amplitude_c``, starting at the nightly minimum (room)."""

    name: str = "diurnal"
    amplitude_c: float = 12.0
    period_ns: float = 1.0 * NS_PER_HOUR
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period_ns <= 0:
            raise ValueError("period must be positive")

    def ambient_c(self, t_ns: float) -> float:
        angle = 2.0 * math.pi * (t_ns / self.period_ns) + self.phase
        swing = 0.5 * (1.0 - math.cos(angle))
        return clamp_ambient_c(ROOM_AMBIENT_C +
                               self.amplitude_c * swing)


@dataclass(frozen=True)
class AgingDrift(DriftModel):
    """Wear-out: after ``onset_ns`` the true margin erodes permanently
    at ``rate_mts_per_hour``, losing ``max_loss_mts`` at most."""

    name: str = "aging"
    rate_mts_per_hour: float = 120.0
    onset_ns: float = 0.0
    max_loss_mts: float = 400.0

    def __post_init__(self) -> None:
        if self.rate_mts_per_hour < 0 or self.max_loss_mts < 0:
            raise ValueError("aging rate and cap must be non-negative")

    def aging_loss_mts(self, t_ns: float) -> float:
        hours = max(0.0, (t_ns - self.onset_ns)) / NS_PER_HOUR
        return min(self.max_loss_mts, self.rate_mts_per_hour * hours)


@dataclass(frozen=True)
class CompositeDrift(DriftModel):
    """Superposition of drift models: thermal excursions add above
    room, aging losses accumulate, and the combined ambient is clamped
    like every other model's."""

    name: str = "composite"
    parts: Sequence[DriftModel] = field(default_factory=tuple)

    def ambient_c(self, t_ns: float) -> float:
        excess = sum(p.ambient_c(t_ns) - ROOM_AMBIENT_C
                     for p in self.parts)
        return clamp_ambient_c(ROOM_AMBIENT_C + max(0.0, excess))

    def aging_loss_mts(self, t_ns: float) -> float:
        return sum(max(0.0, p.aging_loss_mts(t_ns))
                   for p in self.parts)


#: The scenario names ``repro adapt --drift`` accepts.
DRIFT_SCENARIOS = ("ramp", "diurnal", "aging", "composite")


def make_drift(name: str, duration_ns: float,
               peak_ambient_c: float = 41.0,
               diurnal_amplitude_c: float = 12.0,
               aging_rate_mts_per_hour: float = 120.0,
               aging_max_loss_mts: float = 400.0) -> DriftModel:
    """Build a named drift scenario scaled to a campaign duration:
    the ramp peaks mid-run, the diurnal cycle completes exactly once,
    and aging starts eroding from the first simulated instant."""
    if name == "ramp":
        return ThermalRampDrift(start_ns=0.15 * duration_ns,
                                peak_ns=0.45 * duration_ns,
                                end_ns=0.80 * duration_ns,
                                peak_ambient_c=peak_ambient_c)
    if name == "diurnal":
        return DiurnalDrift(amplitude_c=diurnal_amplitude_c,
                            period_ns=duration_ns)
    if name == "aging":
        return AgingDrift(rate_mts_per_hour=aging_rate_mts_per_hour,
                          onset_ns=0.10 * duration_ns,
                          max_loss_mts=aging_max_loss_mts)
    if name == "composite":
        return CompositeDrift(parts=(
            ThermalRampDrift(start_ns=0.15 * duration_ns,
                             peak_ns=0.45 * duration_ns,
                             end_ns=0.80 * duration_ns,
                             peak_ambient_c=peak_ambient_c),
            AgingDrift(rate_mts_per_hour=aging_rate_mts_per_hour / 2.0,
                       onset_ns=0.10 * duration_ns,
                       max_loss_mts=aging_max_loss_mts)))
    raise ValueError("unknown drift scenario {!r}; valid: {}".format(
        name, ", ".join(DRIFT_SCENARIOS)))
