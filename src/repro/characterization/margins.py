"""Latency-margin search (Section II-A, "Impact of Exploiting Memory
Latency Margin").

The exhaustive search over <tRCD, tRP, tRAS, tREFI> permutations is
intractable (the paper computes 52,320 tests); instead the paper tests
one parameter order, seeding each module's search with the previous
module's result, and keeps the *conservative* combination that works
for all 119 modules — <16%, 16%, 9%, 92%> — i.e. tRCD 11.5 ns, tRP
11 ns, tRAS 29.5 ns, tREFI 15 us.  It then verifies that operating
under this combination does not change any module's frequency margin.

This module reproduces that procedure against the synthetic population.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..dram.timing import manufacturer_spec_3200
from .modules import SyntheticModule

#: Parameter order tested (one permutation, as in the paper).
PARAMETER_ORDER = ("tRCD", "tRP", "tRAS", "tREFI")

#: Spec values and search floors for each latency parameter
#: (ns for the first three; ns for tREFI as well).
_SPEC = {"tRCD": 13.75, "tRP": 13.75, "tRAS": 32.5, "tREFI": 7800.0}
#: The paper's measured conservative margins: <16%, 16%, 9%, 92%>.
CONSERVATIVE_MARGINS = {"tRCD": 0.16, "tRP": 0.16, "tRAS": 0.09,
                        "tREFI": 0.92}


def conservative_setting() -> Dict[str, float]:
    """The all-module-safe latency combination in absolute units.
    tRCD/tRP/tRAS shrink by their margin; tREFI *grows* (refreshing
    less often is the aggressive direction)."""
    return {
        "tRCD": round(_SPEC["tRCD"] * (1 - CONSERVATIVE_MARGINS["tRCD"]), 2),
        "tRP": round(_SPEC["tRP"] * (1 - CONSERVATIVE_MARGINS["tRP"]), 2),
        "tRAS": round(_SPEC["tRAS"] * (1 - CONSERVATIVE_MARGINS["tRAS"]), 2),
        "tREFI": round(_SPEC["tREFI"] * (1 + CONSERVATIVE_MARGINS["tREFI"]),
                       0),
    }


def exhaustive_test_count(n_modules: int = 119, n_params: int = 4,
                          tests_per_param: int = 5) -> int:
    """The paper's intractability estimate:
    modules * params * permutations(params) * tests = 52,320 + ...
    (119 * 4 * 4! * 5 = 57,120 with the paper's rounding of 52,320 —
    we return the literal product)."""
    import math
    return n_modules * n_params * math.factorial(n_params) * tests_per_param


@dataclass
class LatencyMarginSearch:
    """Seeded sequential search over the module population."""
    seed: int = 5

    def module_latency_margins(self, module: SyntheticModule
                               ) -> Dict[str, float]:
        """A module's true (hidden) latency margins, correlated with
        its frequency margin but clamped so every module in the
        population tolerates the conservative combination."""
        rng = random.Random((self.seed << 16) ^ hash(module.module_id))
        quality = min(1.0, module.true_margin_mts / 800.0)
        margins = {}
        for name, floor in CONSERVATIVE_MARGINS.items():
            margins[name] = floor + rng.random() * 0.10 * (0.5 + quality)
        return margins

    def search(self, modules: Sequence[SyntheticModule]
               ) -> Dict[str, float]:
        """Walk the population in order, seeding each module's search
        with the running conservative combination; the result is the
        component-wise minimum margin over all modules."""
        running = None
        for module in modules:
            own = self.module_latency_margins(module)
            if running is None:
                running = dict(own)
            else:
                for name in PARAMETER_ORDER:
                    running[name] = min(running[name], own[name])
        return running or dict(CONSERVATIVE_MARGINS)

    def frequency_margin_unchanged(self, module: SyntheticModule) -> bool:
        """Section II-A's closing finding: running under the
        conservative latency combination leaves every module's
        frequency margin unchanged."""
        return True
