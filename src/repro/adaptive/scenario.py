"""The "moving margin" chaos scenario: drift + faults + crashes.

:class:`MovingMarginCampaign` extends the classic
:class:`~repro.resilience.campaign.ChaosCampaign` with a hidden true
margin that *moves* during the run, driven by a
:class:`~repro.characterization.drift.DriftModel` (temperature ramp,
diurnal cycle, aging, or their composite).  The scenario keeps every
continuous §6 invariant 3–7 shadow check of the base campaign green
while adding the adaptive-control questions:

* the **fault stream closes the loop** — the injected CE rate rises
  exponentially (``excess_rate_per_rung`` per 200 MT/s) whenever the
  controller's rung overreaches the hidden margin, so overreach
  produces exactly the evidence a real overclocked module would;
* a **tracking-error metric** integrates |controller rung − true-margin
  rung| over simulated hours, reported in the
  :class:`~repro.resilience.report.SurvivabilityReport` next to the
  same metric for a static-controller run of the same seed;
* the inherited **crash drills land mid-adaptation** (the
  ``mid-checkpoint`` kill point sits inside the drift ramp), so
  recovery must restore the adaptive controller no faster than the
  last durable registry event;
* environment observations are journaled as ``drift`` registry events
  whenever the ambient crosses a ``drift_band_c`` band — observable
  temperatures only, never the hidden margin.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..characterization.drift import DriftModel, make_drift
from ..errors.telemetry import NS_PER_HOUR
from ..obs import get_recorder
from ..resilience.campaign import ChaosCampaign, ChaosConfig
from ..resilience.degradation import (DegradationController,
                                      LADDER_STEP_MTS,
                                      rung_index_for_margin)
from ..resilience.report import SurvivabilityReport
from .controller import (AdaptiveMarginController, DEMOTE_HEADROOM,
                         PROACTIVE_DWELL_FRAC, PROMOTE_HEADROOM)


@dataclass(frozen=True)
class MovingMarginConfig(ChaosConfig):
    """A :class:`ChaosConfig` plus the moving-margin knobs.  The
    inherited :meth:`ChaosConfig.smoke` classmethod works unchanged
    (it builds ``cls(...)``), so ``MovingMarginConfig.smoke()`` is the
    CI-sized moving-margin campaign."""
    #: Drift scenario name (see ``characterization.drift.make_drift``).
    drift: str = "composite"
    #: Drive the adaptive controller (False = static baseline run).
    adaptive: bool = True
    # Drift shape.
    drift_peak_ambient_c: float = 41.0
    drift_diurnal_amplitude_c: float = 12.0
    drift_aging_rate_mts_per_hour: float = 120.0
    drift_aging_max_loss_mts: float = 400.0
    #: Ambient band granularity for ``drift`` registry advisories.
    drift_band_c: float = 3.0
    # Fault-stream feedback.
    #: CE-rate multiplier per 200 MT/s of rung overreach beyond the
    #: hidden true margin (the §II-C thermal anchor reused as the
    #: margin-overreach anchor: one rung too fast, 4x the errors).
    excess_rate_per_rung: float = 4.0
    #: Fraction of the base error rate injected while the rung is at or
    #: below the true margin (running within margin is quiet).
    within_margin_rate_fraction: float = 0.25
    # Adaptive-control law.
    demote_headroom: float = DEMOTE_HEADROOM
    promote_headroom: float = PROMOTE_HEADROOM
    proactive_dwell_frac: float = PROACTIVE_DWELL_FRAC
    #: Failed probes tolerated per window before the backoff park
    #: jumps to the full window: the first failure parks briefly (a
    #: transient excursion may already be over), the second parks out
    #: the window (the margin is genuinely still eroded).
    probe_budget: int = 2


class MovingMarginCampaign(ChaosCampaign):
    """A chaos campaign whose hidden true margin drifts under the
    controller.  All invariant machinery is inherited; the subclass
    only overrides the scenario extension points."""

    config: MovingMarginConfig

    def __init__(self, config: Optional[MovingMarginConfig] = None):
        config = config or MovingMarginConfig()
        self.drift: DriftModel = make_drift(
            config.drift, config.duration_ns,
            peak_ambient_c=config.drift_peak_ambient_c,
            diurnal_amplitude_c=config.drift_diurnal_amplitude_c,
            aging_rate_mts_per_hour=config.drift_aging_rate_mts_per_hour,
            aging_max_loss_mts=config.drift_aging_max_loss_mts)
        super().__init__(config)
        self._module_bases = [m.true_margin_mts
                              for m in self.channel.modules]
        self._true_margin = self.drift.true_margin_mts(
            config.base_margin_mts, 0.0)
        self._true_min = self._true_margin
        self._true_max = self._true_margin
        self._tracking_error_rung_h = 0.0
        self._tracking_samples = 0
        self._last_band: Optional[int] = None

    # -- scenario extension points ------------------------------------------------

    def _controller_cls(self):
        return (AdaptiveMarginController if self.config.adaptive
                else DegradationController)

    def _controller_kwargs(self) -> Dict[str, object]:
        cfg = self.config
        if not cfg.adaptive:
            return {}
        return {"demote_headroom": cfg.demote_headroom,
                "promote_headroom": cfg.promote_headroom,
                "proactive_dwell_frac": cfg.proactive_dwell_frac,
                "probe_budget": cfg.probe_budget}

    def _ambient_at(self, frac: float, now_ns: float) -> float:
        return self.drift.ambient_c(now_ns)

    def _injection_rate(self, frac: float) -> float:
        cfg = self.config
        excess = max(0, self.controller.current_rung.margin_mts -
                     self._true_margin)
        if excess > 0:
            return cfg.base_error_rate_per_hour * (
                cfg.excess_rate_per_rung **
                (excess / float(LADDER_STEP_MTS)))
        if frac < cfg.flood_span[0]:
            return (cfg.base_error_rate_per_hour *
                    cfg.within_margin_rate_fraction)
        return 0.0

    def _step_hook(self, step: int, frac: float, now_ns: float,
                   step_ns: float) -> None:
        cfg = self.config
        rung = self.controller.current_rung
        true = self.drift.true_margin_mts(cfg.base_margin_mts, now_ns,
                                          rung.use_latency_margin)
        self._true_margin = true
        self._true_min = min(self._true_min, true)
        self._true_max = max(self._true_max, true)
        # Move the hidden margin under the datapath: every module
        # erodes by the same amount the node's profiled margin did.
        erosion = cfg.base_margin_mts - true
        for module, base in zip(self.channel.modules,
                                self._module_bases):
            module.true_margin_mts = max(0, base - erosion)
        # Tracking error: |controller rung - truth rung| in ladder
        # positions, integrated over simulated hours.  Truth maps
        # through the same conservative rung mapping recovery uses,
        # allowing the latency rung only when the controller is on it
        # (matching how ``true`` itself was computed above) — the
        # latency step is a real rung, distinct from freq@800 even
        # though their margins match.
        ladder = self.controller.ladder
        truth_index = rung_index_for_margin(
            ladder, true, allow_latency_margin=rung.use_latency_margin)
        err_rungs = abs(self.controller.rung_index - truth_index)
        self._tracking_error_rung_h += err_rungs * (step_ns /
                                                    NS_PER_HOUR)
        self._tracking_samples += 1
        # Journal observable environment changes (never the truth).
        ambient = self.drift.ambient_c(now_ns)
        band = int(ambient // cfg.drift_band_c)
        if band != self._last_band:
            self._last_band = band
            dimm = self.drift.dimm_c(now_ns)
            self.registry.record_drift(
                self.chaos_node, time_s=now_ns / 1e9,
                ambient_c=round(ambient, 3), dimm_c=round(dimm, 3),
                reason="{} band {}".format(self.drift.name, band))
            rec = get_recorder()
            if rec.enabled:
                rec.counter("drift", "band_changes")
                rec.event("drift", "ambient_band", now_ns,
                          scenario=self.drift.name, band=band,
                          ambient_c=round(ambient, 3),
                          dimm_c=round(dimm, 3))

    # -- reporting ----------------------------------------------------------------

    def _finalize(self, end_ns: float) -> None:
        super()._finalize(end_ns)
        cfg = self.config
        report = self.report
        report.drift_scenario = cfg.drift
        report.adaptive = cfg.adaptive
        report.tracking_error_rung_h = round(
            self._tracking_error_rung_h, 6)
        report.tracking_samples = self._tracking_samples
        report.true_margin_min_mts = self._true_min
        report.true_margin_max_mts = self._true_max
        report.proactive_demotions = getattr(
            self.controller, "proactive_demotions", 0)
        report.probe_promotions = getattr(
            self.controller, "probe_promotions", 0)
        report.probes_suppressed = getattr(
            self.controller, "probes_suppressed", 0)
        if self.registry.has_node(self.chaos_node):
            report.drift_advisories = \
                self.registry.node(self.chaos_node).drift_advisories


def run_moving_margin_campaign(
        config: Optional[MovingMarginConfig] = None,
        compare_static: bool = True) -> SurvivabilityReport:
    """Run one moving-margin campaign; with ``compare_static`` (the
    default) a second campaign with the identical seed and environment
    but the static :class:`DegradationController` provides the
    tracking-error baseline the adaptive run must beat."""
    config = config or MovingMarginConfig()
    report = MovingMarginCampaign(config).run()
    if compare_static and config.adaptive:
        baseline = MovingMarginCampaign(
            replace(config, adaptive=False)).run()
        report.tracking_error_static_rung_h = \
            baseline.tracking_error_rung_h
    return report
