"""Online adaptive margin control (moving-margin tracking).

The paper treats each node's profiled frequency margin as a constant;
this subsystem treats it as an *operating condition* (AL-DRAM,
Flexible-Latency DRAM) that temperature and aging move during a run.
:class:`AdaptiveMarginController` tracks the moving margin online from
CE-rate windows, epoch-trip density, and clean-window streaks —
demoting proactively ahead of faults and re-promoting through a
hysteresis band with a bounded failed-probe budget —
and :class:`MovingMarginCampaign` stress-tests the whole loop with
drift, fault injection, and crash-restarts while the §6 invariant
shadow checks stay on."""

from .controller import (AdaptiveMarginController, DEMOTE_HEADROOM,
                         PROACTIVE_DWELL_FRAC, PROMOTE_HEADROOM)
from .scenario import (MovingMarginCampaign, MovingMarginConfig,
                       run_moving_margin_campaign)

__all__ = [
    "AdaptiveMarginController", "DEMOTE_HEADROOM",
    "MovingMarginCampaign", "MovingMarginConfig",
    "PROACTIVE_DWELL_FRAC", "PROMOTE_HEADROOM",
    "run_moving_margin_campaign",
]
