"""Online adaptive margin control.

:class:`AdaptiveMarginController` extends the reactive degradation
ladder (:class:`repro.resilience.degradation.DegradationController`)
into a feedback controller that *tracks* a moving true margin from the
evidence streams the stack already emits:

* **proactive demotion** — the reactive ladder demotes only once the
  :class:`~repro.errors.telemetry.MarginAdvisor` crosses its CE-rate
  limit or the epoch guard trips.  The adaptive law watches the same
  CE-rate window and steps down one rung as soon as the rate crosses
  ``demote_headroom`` of the limit (default 70%) — and it may do so
  after only ``proactive_dwell_frac`` of the demotion dwell, so a
  margin eroding under the node is followed *before* the fault budget
  is spent;
* **deadband re-promotion** — the reactive ladder re-promotes on any
  clean window.  The adaptive law additionally requires the CE rate to
  be *low* (below ``promote_headroom`` of the limit, default 35%), so
  a rate hovering between the two thresholds parks the rung instead of
  oscillating — a classic hysteresis band;
* **bounded probing with backoff** — each re-promotion is a *probe* of
  the hidden margin; a probe that gets demoted again within
  ``probe_window_ns`` has *failed* (the rung above is not actually
  safe).  A failed probe parks promotion for
  ``probe_backoff_windows`` clean windows, doubling per consecutive
  failure; once ``probe_budget`` failures accumulate inside the window
  the park jumps to the full window.  Probing is also suppressed while
  recent epoch trips are dense (``trip_density_limit`` within
  ``trip_density_window_ns``).  Successful promotions never consume
  budget, so a genuine climb back after a transient runs at full
  ladder speed — only flapping is throttled, gently at first (the
  margin may simply have come back) and hard when it repeats.

Everything rides on the base controller's machinery — ``_move_to``,
the reprofile gate for leaving specification, epoch-trip handling —
so ``Channel.retune_fast``'s spec-only invariant and the §6 safety
story hold for the adaptive law *by construction*: the subclass only
decides *when* to move, never *how*.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.backoff import BackoffPolicy
from ..obs import get_recorder
from ..resilience.degradation import DegradationController

#: Demote one rung when the CE rate reaches this fraction of the
#: advisor's demotion limit (the upper edge of the hysteresis band).
DEMOTE_HEADROOM = 0.70

#: Allow re-promotion probes only while the CE rate is below this
#: fraction of the limit (the lower edge of the hysteresis band).
PROMOTE_HEADROOM = 0.35

#: Fraction of the demotion dwell a proactive demotion waits; tracking
#: an eroding margin needs a faster step-down than the reactive path.
PROACTIVE_DWELL_FRAC = 0.5

#: Clean windows the first failed probe parks promotion for; doubles
#: per consecutive failure up to the probe window.
PROBE_BACKOFF_WINDOWS = 2.0


class AdaptiveMarginController(DegradationController):
    """A :class:`DegradationController` with a margin-tracking law.

    Drop-in compatible: ``observe(now_ns)`` remains the single entry
    point, checkpoint/WAL restore works through the same
    ``to_state``/``from_state`` pair, and every safety behaviour of the
    base class (epoch trips, permanent-fault remaps, reprofile gating)
    is inherited unchanged.  Fleet ingestion recognises the
    ``adaptive`` class attribute and records the controller's rung
    changes as ``adapt`` registry events.
    """

    #: Marks rung changes for :class:`repro.fleet.ingest.FleetIngest`.
    adaptive = True

    def __init__(self, manager, advisor,
                 demote_headroom: float = DEMOTE_HEADROOM,
                 promote_headroom: float = PROMOTE_HEADROOM,
                 proactive_dwell_frac: float = PROACTIVE_DWELL_FRAC,
                 probe_budget: int = 2,
                 probe_backoff_windows: float = PROBE_BACKOFF_WINDOWS,
                 probe_window_ns: Optional[float] = None,
                 trip_density_limit: int = 2,
                 trip_density_window_ns: Optional[float] = None,
                 **kwargs):
        super().__init__(manager, advisor, **kwargs)
        if not 0.0 < promote_headroom < demote_headroom <= 1.0:
            raise ValueError("need 0 < promote_headroom < "
                             "demote_headroom <= 1")
        if not 0.0 < proactive_dwell_frac <= 1.0:
            raise ValueError("proactive_dwell_frac must be in (0, 1]")
        if probe_budget < 1 or trip_density_limit < 1:
            raise ValueError("probe budget and trip density limit "
                             "must be at least 1")
        if probe_backoff_windows <= 0:
            raise ValueError("probe_backoff_windows must be positive")
        self.demote_headroom = demote_headroom
        self.promote_headroom = promote_headroom
        self.proactive_dwell_frac = proactive_dwell_frac
        self.probe_budget = probe_budget
        self.probe_backoff_windows = probe_backoff_windows
        self.trip_density_limit = trip_density_limit
        # Defaults scale with the promotion cadence: a probe has this
        # long to survive, and failures are remembered this long.
        self.probe_window_ns = (probe_window_ns
                                if probe_window_ns is not None
                                else 8.0 * self.clean_window_ns)
        self.trip_density_window_ns = (
            trip_density_window_ns
            if trip_density_window_ns is not None
            else 4.0 * self.clean_window_ns)
        if self.probe_window_ns <= 0 or self.trip_density_window_ns <= 0:
            raise ValueError("windows must be positive")
        self._pending_probe_ns: Optional[float] = None
        self._park_until_ns = 0.0
        self._failed_probes: List[float] = []
        self._trip_times: List[float] = []
        self.proactive_demotions = 0
        self.probe_promotions = 0
        self.probes_suppressed = 0

    # -- evidence -----------------------------------------------------------------

    def _ce_rate(self, now_ns: float) -> float:
        """The free module's corrected-error rate over the advisor
        window — the signal both hysteresis edges compare against."""
        module_id = self._free_module_id()
        if module_id is None:
            return 0.0
        return self.advisor.log_for(module_id).rate_per_hour(
            now_ns, corrected=True)

    def _prune(self, times: List[float], now_ns: float,
               window_ns: float) -> None:
        while times and now_ns - times[0] > window_ns:
            times.pop(0)

    # -- probe bookkeeping ---------------------------------------------------------

    def _move_to(self, index: int, now_ns: float, kind: str,
                 reason: str) -> None:
        previous = self.rung_index
        super()._move_to(index, now_ns, kind, reason)
        # A demotion soon after a probe promotion means the probed rung
        # was not actually safe: the probe failed and consumes budget.
        if kind == "demote" and self.rung_index > previous and \
                self._pending_probe_ns is not None:
            if now_ns - self._pending_probe_ns <= self.probe_window_ns:
                self._failed_probes.append(now_ns)
                self._prune(self._failed_probes, now_ns,
                            self.probe_window_ns)
                # Exponential backoff: the first failure parks briefly
                # (the margin may simply have come back by the next
                # probe), repeats park for the whole window.
                failures = len(self._failed_probes)
                if failures >= self.probe_budget:
                    park_ns = self.probe_window_ns
                else:
                    park_ns = BackoffPolicy(
                        base=(self.clean_window_ns *
                              self.probe_backoff_windows),
                        cap=self.probe_window_ns).delay(failures)
                self._park_until_ns = max(self._park_until_ns,
                                          now_ns + park_ns)
                rec = get_recorder()
                if rec.enabled:
                    rec.counter("adaptive", "failed_probes")
                    rec.event("adaptive", "probe_failed", now_ns,
                              probed_ns=self._pending_probe_ns,
                              park_ns=park_ns,
                              rung=self.current_rung.name)
            self._pending_probe_ns = None

    # -- the adaptive law ----------------------------------------------------------

    def _check_epoch_trips(self, now_ns: float) -> None:
        if self.manager.epoch_guard.tripped_epochs > self._seen_trips:
            self._trip_times.append(now_ns)
        super()._check_epoch_trips(now_ns)

    def _check_advice(self, now_ns: float, advice) -> None:
        super()._check_advice(now_ns, advice)
        # Proactive demotion: the advisor still says "keep", but the
        # CE rate has entered the headroom band below its limit — the
        # margin is eroding under us; step down before the budget
        # (or the epoch guard) is spent.
        if advice is None or advice.action != "keep" or \
                self.retired or self.at_spec:
            return
        dwell = self.proactive_dwell_frac * self.demote_dwell_ns
        if now_ns - self.last_change_ns < dwell:
            return
        limit = self.demote_headroom * self.advisor.demote_ce_rate
        rate = self._ce_rate(now_ns)
        if rate < limit:
            return
        self.proactive_demotions += 1
        self._move_to(self.rung_index + 1, now_ns, "demote",
                      "adaptive: CE rate {:.0f}/h at {:.0f}% of limit"
                      .format(rate, 100.0 * self.demote_headroom))
        rec = get_recorder()
        if rec.enabled:
            rec.counter("adaptive", "proactive_demotions")
            rec.event("adaptive", "proactive_demote", now_ns,
                      ce_rate_per_hour=rate,
                      rung=self.current_rung.name)

    def _check_promotion(self, now_ns: float) -> None:
        if self.retired or self.rung_index == 0:
            return
        # Only gate promotions the base law would actually attempt —
        # suppression counters must measure real interventions.
        quiet_since = max(self.last_change_ns, self.last_error_ns)
        if now_ns - quiet_since < self.clean_window_ns:
            return
        if not self.manager.epoch_guard.margin_allowed(now_ns):
            return
        self._prune(self._trip_times, now_ns,
                    self.trip_density_window_ns)
        self._prune(self._failed_probes, now_ns, self.probe_window_ns)
        # Leaving specification goes through the base law's reprofile
        # gate — there is no margin rung to probe, and the reprofile is
        # already the conservative check — so the adaptive suppression
        # applies only to genuine probes of higher rungs.
        reason = ""
        if self.at_spec:
            pass
        elif self._ce_rate(now_ns) > \
                self.promote_headroom * self.advisor.demote_ce_rate:
            reason = "ce-rate-deadband"
        elif len(self._trip_times) >= self.trip_density_limit:
            reason = "trip-density"
        elif now_ns < self._park_until_ns:
            reason = "probe-backoff"
        if reason:
            self.probes_suppressed += 1
            rec = get_recorder()
            if rec.enabled:
                rec.counter("adaptive", "probes_suppressed",
                            reason=reason)
            return
        before = len(self.events)
        super()._check_promotion(now_ns)
        promoted = any(e.kind == "promote"
                       for e in self.events[before:])
        if promoted:
            self._pending_probe_ns = now_ns
            self.probe_promotions += 1
            rec = get_recorder()
            if rec.enabled:
                rec.counter("adaptive", "probe_promotions")
                rec.event("adaptive", "probe_promote", now_ns,
                          rung=self.current_rung.name,
                          failed_probes_in_window=len(
                              self._failed_probes))

    # -- checkpoint hooks -----------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        state = super().to_state()
        state["adaptive"] = {
            "pending_probe_ns": self._pending_probe_ns,
            "park_until_ns": self._park_until_ns,
            "failed_probes": list(self._failed_probes),
            "trip_times": list(self._trip_times),
            "proactive_demotions": self.proactive_demotions,
            "probe_promotions": self.probe_promotions,
            "probes_suppressed": self.probes_suppressed,
        }
        return state

    @classmethod
    def from_state(cls, manager, advisor, state, now_ns: float = 0.0,
                   wal_rung_index=None, wal_retired: bool = False,
                   **kwargs) -> "AdaptiveMarginController":
        """Restore with the base class's conservative semantics, then
        re-arm the adaptive bookkeeping.  Failed probes and recent trip
        times are *kept* across the restart — forgetting them would let
        a crash refresh the probe budget, promoting faster than the
        durable record allows."""
        ctl = super().from_state(manager, advisor, state,
                                 now_ns=now_ns,
                                 wal_rung_index=wal_rung_index,
                                 wal_retired=wal_retired, **kwargs)
        extra = state.get("adaptive", {})
        pending = extra.get("pending_probe_ns")
        ctl._pending_probe_ns = (float(pending) if pending is not None
                                 else None)
        ctl._park_until_ns = float(extra.get("park_until_ns", 0.0))
        ctl._failed_probes = [float(t) for t in
                              extra.get("failed_probes", [])]
        ctl._trip_times = [float(t) for t in
                           extra.get("trip_times", [])]
        ctl.proactive_demotions = int(
            extra.get("proactive_demotions", 0))
        ctl.probe_promotions = int(extra.get("probe_promotions", 0))
        ctl.probes_suppressed = int(extra.get("probes_suppressed", 0))
        return ctl
