"""Statistical helpers used across characterization and evaluation.

The paper reports averages, standard deviations, 99% confidence
intervals (computed with the normal distribution, following prior
work [60]), weighted averages across memory-usage buckets, and
geometric means across benchmark suites.  This module implements those
primitives once so every figure's bench uses identical math.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple

#: z-score of the two-sided 99% confidence interval of a normal
#: distribution.  The paper's Figure 3a uses normal-distribution CIs.
Z_99 = 2.5758293035489004


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean. Raises ``ValueError`` on an empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (the paper reports STDev of full
    module groups, not samples of a larger set)."""
    values = list(values)
    if not values:
        raise ValueError("stdev() of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def sample_stdev(values: Sequence[float]) -> float:
    """Bessel-corrected sample standard deviation."""
    values = list(values)
    if len(values) < 2:
        raise ValueError("sample_stdev() needs at least two values")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def confidence_interval_99(values: Sequence[float]) -> Tuple[float, float]:
    """Return ``(mean, half_width)`` of the normal-distribution 99% CI.

    Mirrors the paper's Figure 3a methodology ("we use the normal
    distribution to calculate CI similar to a prior work [60]").
    """
    values = list(values)
    mu = mean(values)
    if len(values) < 2:
        return mu, 0.0
    half = Z_99 * sample_stdev(values) / math.sqrt(len(values))
    return mu, half


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; weights need not be normalized."""
    values = list(values)
    weights = list(weights)
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean() of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean() requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def suite_average(per_suite: Dict[str, float]) -> float:
    """Average that weighs every suite equally, per the paper's footnote 1
    ("average across six HPC benchmark suites means weighing every suite
    equally")."""
    return mean(list(per_suite.values()))


def histogram(values: Iterable[float], bin_width: float,
              origin: float = 0.0) -> Dict[float, int]:
    """Bucket ``values`` into ``bin_width``-wide bins anchored at
    ``origin``; returns ``{bin_left_edge: count}`` sorted by edge."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    counts: Dict[float, int] = {}
    for v in values:
        edge = origin + math.floor((v - origin) / bin_width) * bin_width
        counts[edge] = counts.get(edge, 0) + 1
    return dict(sorted(counts.items()))


def cdf_at_least(values: Sequence[float], threshold: float) -> float:
    """Fraction of ``values`` that are >= ``threshold`` (used for the
    Figure 11 'X% of channels/nodes have at least Y GT/s margin' stats)."""
    values = list(values)
    if not values:
        raise ValueError("cdf_at_least() of empty sequence")
    return sum(1 for v in values if v >= threshold) / len(values)
