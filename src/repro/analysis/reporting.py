"""Plain-text rendering of the paper's tables and figure data.

Every benchmark target prints its rows through these helpers so the
regenerated output has a uniform, diffable format.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, points: Dict[str, float],
                  fmt: str = "{:.3f}") -> str:
    """Render a single named data series (one figure line/bar group)."""
    body = ", ".join(
        "{}={}".format(k, fmt.format(v)) for k, v in points.items())
    return "{}: {}".format(name, body)


def format_bar_chart(points: Dict[str, float], width: int = 40,
                     fmt: str = "{:.3f}") -> str:
    """Render a horizontal ASCII bar chart, one bar per key."""
    if not points:
        return "(empty)"
    peak = max(abs(v) for v in points.values()) or 1.0
    label_w = max(len(k) for k in points)
    lines = []
    for key, value in points.items():
        bar = "#" * max(0, round(abs(value) / peak * width))
        lines.append("{} | {} {}".format(
            key.ljust(label_w), bar, fmt.format(value)))
    return "\n".join(lines)


def format_kv(title: str, pairs: Sequence[Sequence[object]]) -> str:
    """Render a titled key/value block with aligned keys — the building
    block of the survivability report."""
    lines: List[str] = [title, "-" * len(title)]
    if pairs:
        key_w = max(len(str(k)) for k, _ in pairs)
        for key, value in pairs:
            lines.append("{} : {}".format(str(key).ljust(key_w),
                                          _cell(value)))
    return "\n".join(lines)


def format_event_log(title: str,
                     events: Sequence[Sequence[object]]) -> str:
    """Render a timestamped event log (time, kind, detail rows)."""
    lines: List[str] = [title, "-" * len(title)]
    if not events:
        lines.append("(no events)")
        return "\n".join(lines)
    rows = [[_cell(v) for v in e] for e in events]
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return "{:.3f}".format(value)
    return str(value)
