"""Statistics and plain-text reporting shared by all benches."""

from .reporting import format_bar_chart, format_series, format_table
from .stats import (Z_99, cdf_at_least, confidence_interval_99,
                    geometric_mean, histogram, mean, sample_stdev, stdev,
                    suite_average, weighted_mean)

__all__ = [
    "Z_99", "cdf_at_least", "confidence_interval_99", "format_bar_chart",
    "format_series", "format_table", "geometric_mean", "histogram",
    "mean", "sample_stdev", "stdev", "suite_average", "weighted_mean",
]
