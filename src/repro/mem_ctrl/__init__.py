"""Memory-controller substrate: address mapping, request queues, page
policies, FR-FCFS scheduling, write batching, and the per-channel
controller with design-policy hooks."""

from .address_map import AddressMapping, MemLocation
from .controller import ChannelController, ControllerStats, MemoryController
from .page_policy import PagePolicy
from .policy import AccessPolicy, CONVENTIONAL_TURNAROUND_NS
from .queues import (BoundedQueue, READ_QUEUE_ENTRIES, ReadRequest,
                     WRITE_QUEUE_ENTRIES, WriteRequest)
from .scheduler import FrFcfsScheduler, SchedulerStats
from .writeback_cache import (WRITEBACK_CACHE_ASSOC, WRITEBACK_CACHE_BYTES,
                              WritebackCache, WritebackCacheStats)

__all__ = [
    "AccessPolicy", "AddressMapping", "BoundedQueue",
    "CONVENTIONAL_TURNAROUND_NS", "ChannelController", "ControllerStats",
    "FrFcfsScheduler", "MemLocation", "MemoryController", "PagePolicy",
    "READ_QUEUE_ENTRIES", "ReadRequest", "SchedulerStats",
    "WRITEBACK_CACHE_ASSOC", "WRITEBACK_CACHE_BYTES", "WRITE_QUEUE_ENTRIES",
    "WritebackCache", "WritebackCacheStats", "WriteRequest",
]
