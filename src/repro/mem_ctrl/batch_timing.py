"""Batched write-drain ordering for the cycle engine's inner loop.

Entering write mode, the controller drains the accumulated write
batch "first-ready": writes grouped per (rank, bank), each group
sorted by row, and whole same-row runs emitted round-robin across the
groups so row cycles overlap while the data bus stays packed.  The
original implementation is a Python dict + cursor loop — O(batch)
attribute chasing per emitted write, and the hottest region of a
Hetero-DMR simulation once batches reach the 12,800-write drain
target.

:func:`order_write_batch` computes the identical order as numpy
integer sorts: one ``lexsort`` puts the batch into (group,
row)-order, run boundaries fall out of adjacent comparisons, and a
second ``lexsort`` by (run-within-group, group, position) is exactly
the round-robin emission.  Every step is an integer sort or
element-wise comparison — no float arithmetic — so the permutation is
bit-exactly the scalar loop's, which the test suite asserts on
randomized batches.  The float timing chain that *consumes* the order
(`Channel.access`) stays scalar: chained float addition is
non-associative, and the determinism contract (same results with and
without numpy) is worth more than the last constant factor.

Batches below :data:`VECTOR_THRESHOLD` use the scalar loop (array
setup would dominate), as does any batch when numpy is missing or
``REPRO_BATCH=0`` opts out.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, TypeVar

try:                             # pragma: no cover - host-dependent
    import numpy as _np
except ImportError:              # pragma: no cover - host-dependent
    _np = None

#: Environment opt-out: ``REPRO_BATCH=0`` forces the scalar ordering
#: loop even where numpy is available (diagnostic escape hatch; the
#: two paths produce identical orderings regardless).
BATCH_ENV_VAR = "REPRO_BATCH"

#: Minimum batch size for the vectorized path; below it the scalar
#: loop is faster than array construction.
VECTOR_THRESHOLD = 64

W = TypeVar("W")


def vectorized_enabled() -> bool:
    """Whether the numpy ordering path is active on this host."""
    if _np is None:
        return False
    return os.environ.get(BATCH_ENV_VAR, "").strip() != "0"


def order_write_batch(batch: Sequence[W]) -> List[W]:
    """First-ready drain order for a write batch.

    Items need ``.location.rank`` / ``.location.bank`` /
    ``.location.row`` attributes (``WriteRequest`` in production).
    Returns a new list; the input is not modified.
    """
    if len(batch) >= VECTOR_THRESHOLD and vectorized_enabled():
        return _order_vectorized(batch)
    return _order_scalar(batch)


def _order_scalar(batch: Sequence[W]) -> List[W]:
    """Reference ordering: per-(rank, bank) groups in first-appearance
    order, rows sorted stably within each group, whole same-row runs
    emitted round-robin across groups."""
    groups: Dict[tuple, List[W]] = {}
    for wr in batch:
        groups.setdefault((wr.location.rank, wr.location.bank),
                          []).append(wr)
    for group in groups.values():
        group.sort(key=lambda w: w.location.row)
    ordered: List[W] = []
    cursors = {key: 0 for key in groups}
    while len(ordered) < len(batch):
        for key, group in groups.items():
            i = cursors[key]
            if i >= len(group):
                continue
            # Emit the whole same-row run for this bank, then move on.
            row = group[i].location.row
            while i < len(group) and group[i].location.row == row:
                ordered.append(group[i])
                i += 1
            cursors[key] = i
    return ordered


def _order_vectorized(batch: Sequence[W]) -> List[W]:
    n = len(batch)
    ranks = _np.fromiter((w.location.rank for w in batch),
                         dtype=_np.int64, count=n)
    banks = _np.fromiter((w.location.bank for w in batch),
                         dtype=_np.int64, count=n)
    rows = _np.fromiter((w.location.row for w in batch),
                        dtype=_np.int64, count=n)
    # (rank, bank) composite key; group ids numbered by the key's
    # FIRST APPEARANCE in the batch — the dict-insertion order the
    # scalar loop's round-robin walks.
    key = (ranks << 20) | banks
    _, first_idx, inverse = _np.unique(key, return_index=True,
                                       return_inverse=True)
    gid = _np.argsort(_np.argsort(first_idx))[inverse]
    pos = _np.arange(n)
    # Stable (group, row)-sort: within a (gid, row) tie the original
    # batch order survives, matching list.sort()'s stability.
    by_group = _np.lexsort((pos, rows, gid))
    g_s = gid[by_group]
    r_s = rows[by_group]
    # Same-row run boundaries, then each write's run index *within its
    # group* — the scalar loop's round-robin pass number.
    new_group = _np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = g_s[1:] != g_s[:-1]
    new_run = new_group.copy()
    new_run[1:] |= r_s[1:] != r_s[:-1]
    run_global = _np.cumsum(new_run) - 1
    group_first_run = _np.maximum.accumulate(
        _np.where(new_group, run_global, -1))
    run_in_group = run_global - group_first_run
    # Round-robin emission == sort by (pass, group, in-run position).
    emit = by_group[_np.lexsort((_np.arange(n), g_s, run_in_group))]
    return [batch[i] for i in emit]
