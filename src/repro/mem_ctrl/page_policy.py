"""Row-buffer page policies (Table IV: hybrid policy with a 200-cycle
timeout interval).

* ``open``   — rows stay open until a conflicting activate.
* ``closed`` — rows are precharged right after each access.
* ``hybrid`` — rows stay open for a timeout window after their last
  access; when no request arrives within the window the bank
  autoprecharges, converting later same-row accesses into cheaper
  closed-bank misses instead of conflicts.

The simulator applies the policy lazily: before an access classifies
against the bank, :meth:`apply` retroactively closes a row whose
timeout elapsed in the past (the precharge happened while the bank was
idle, so its tRP is already paid).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.hierarchy import CPU_GHZ
from ..dram.bank import Bank


@dataclass(frozen=True)
class PagePolicy:
    """Row-buffer management policy."""
    kind: str = "hybrid"             # 'open' | 'closed' | 'hybrid'
    timeout_cycles: int = 200        # hybrid timeout (CPU cycles)
    cpu_ghz: float = CPU_GHZ

    def __post_init__(self) -> None:
        if self.kind not in ("open", "closed", "hybrid"):
            raise ValueError("unknown page policy {!r}".format(self.kind))
        if self.timeout_cycles <= 0:
            raise ValueError("timeout must be positive")
        # apply() runs once per scheduler-scanned candidate; the
        # timeout must be an attribute load there, not a division.
        object.__setattr__(self, "_timeout_ns",
                           self.timeout_cycles / self.cpu_ghz)

    @property
    def timeout_ns(self) -> float:
        return self._timeout_ns

    def apply(self, bank: Bank, now_ns: float) -> None:
        """Close the bank's row if the policy would have by ``now_ns``."""
        if bank.open_row is None:
            return
        kind = self.kind
        if kind == "hybrid":
            if now_ns - bank.last_access_ns > self._timeout_ns:
                bank.open_row = None
        elif kind == "closed":
            self._idle_close(bank)

    @staticmethod
    def _idle_close(bank: Bank) -> None:
        # The precharge occurred while the bank was idle; by the time a
        # new request arrives its tRP has already elapsed, so only the
        # row-buffer state changes.
        bank.open_row = None
