"""Physical-address interleaving (Table IV: XOR-based mapping similar
to Intel Skylake [67]).

A line address is decomposed into channel, rank, bank, row, and column
fields; the bank index is XOR-hashed with low row bits so that strided
streams spread across banks instead of thrashing one row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.cache import LINE_BYTES


@dataclass(frozen=True)
class MemLocation:
    """A decoded DRAM coordinate."""
    channel: int
    rank: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class AddressMapping:
    """Field widths of the interleaving, lowest-order first:
    line offset | channel | column | bank | rank | row."""
    channels: int = 1
    ranks_per_channel: int = 4
    banks_per_rank: int = 16
    columns_per_row: int = 128   # 64-byte lines per 8 KB row
    xor_bank_hash: bool = True

    def __post_init__(self) -> None:
        for name in ("channels", "ranks_per_channel", "banks_per_rank",
                     "columns_per_row"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(
                    "{} must be a positive power of two".format(name))

    def decode(self, address: int) -> MemLocation:
        """Decode a byte address into its DRAM coordinate."""
        line = address // LINE_BYTES
        channel = line % self.channels
        line //= self.channels
        column = line % self.columns_per_row
        line //= self.columns_per_row
        bank = line % self.banks_per_rank
        line //= self.banks_per_rank
        rank = line % self.ranks_per_channel
        line //= self.ranks_per_channel
        row = line
        if self.xor_bank_hash:
            bank ^= row % self.banks_per_rank
        return MemLocation(channel, rank, bank, row, column)

    def row_buffer_bytes(self) -> int:
        return self.columns_per_row * LINE_BYTES
