"""Design-policy interface between the memory controller and the memory
designs it can embody (Commercial Baseline, FMR, Hetero-DMR, ...).

The controller is design-agnostic; a policy object decides
* which flat rank serves a read (replica selection / copy redirection),
* whether writes broadcast to multiple ranks in one bus transaction,
* what entering/leaving write mode costs (bus turnaround for a
  conventional system, 1 us frequency transitions for Hetero-DMR), and
* which extra blocks join a write batch (Hetero-DMR's LLC cleaning).

The concrete Hetero-DMR/FMR policies live in :mod:`repro.core`; this
module defines the interface plus the conventional default.
"""

from __future__ import annotations

from typing import List, Optional

from ..dram.channel import Channel
from .queues import ReadRequest

#: Bus turnaround cost of a conventional read<->write switch (~20 ns
#: round trip, Section III-A1), charged half per direction.
CONVENTIONAL_TURNAROUND_NS = 10.0


class AccessPolicy:
    """Conventional (Commercial Baseline) behaviour; subclass hooks."""

    name = "baseline"
    #: Broadcast each write to all awake ranks in one bus transaction?
    broadcast_writes = False
    #: Route dirty evictions through the per-channel writeback cache?
    uses_writeback_cache = False
    #: True when :meth:`read_rank` is exactly
    #: ``location.rank % channel.rank_count()`` — the controller and
    #: scheduler then resolve ranks inline instead of paying three
    #: Python calls per scanned candidate.  Subclasses that override
    #: :meth:`read_rank` must set this to False.
    identity_read_rank = True

    def read_rank(self, channel: Channel, request: ReadRequest,
                  now_ns: float) -> int:
        """Flat rank that serves this read (identity for the baseline)."""
        return request.location.rank % channel.rank_count()

    def enter_write_mode(self, channel: Channel, now_ns: float) -> float:
        """Cost of switching the channel to write mode; returns the time
        writes may start."""
        return now_ns + CONVENTIONAL_TURNAROUND_NS

    def exit_write_mode(self, channel: Channel, now_ns: float) -> float:
        """Cost of switching back to read mode."""
        return now_ns + CONVENTIONAL_TURNAROUND_NS

    def write_batch_extra(self, now_ns: float) -> List[int]:
        """Extra line addresses to append to a write batch (Hetero-DMR's
        proactive LLC cleaning); empty for the baseline."""
        return []

    def on_read_complete(self, channel: Channel, request: ReadRequest,
                         now_ns: float) -> float:
        """Hook after a read's data burst (Hetero-DMR checks the copy's
        ECC here and pays the correction flow on a detected error).
        Returns the possibly-delayed completion time."""
        return now_ns

    def writes_per_transaction(self) -> int:
        """DRAM write bursts consumed per logical write (energy model):
        1 for baseline, 2 for broadcast to original+copy, 3 for
        Hetero-DMR+FMR's original+two copies."""
        return 1
