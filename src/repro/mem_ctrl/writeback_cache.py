"""Per-channel victim writeback cache (Section III-E).

Hetero-DMR adds a 128 KB 64-way cache between the LLC and each
channel's write buffer so the small (128-entry) write buffer does not
fill — and force a write-mode switch — long before a 12800-write batch
has accumulated.  Evicted dirty blocks are cached here when their set
has space and go to the write buffer otherwise; during write mode the
whole structure drains to DRAM through the write buffer.

The memory command scheduler never inspects this cache (the paper is
explicit about that), so it is modelled as pure buffering: insertion
order per set, no timing cost of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cache.cache import LINE_BYTES

#: Geometry from Section III-E: 128 KB, 64 ways, 64 B lines -> 32 sets.
WRITEBACK_CACHE_BYTES = 128 << 10
WRITEBACK_CACHE_ASSOC = 64


@dataclass
class WritebackCacheStats:
    inserted: int = 0
    rejected: int = 0
    drained: int = 0
    read_hits: int = 0


class WritebackCache:
    """Insertion-ordered victim buffer for dirty evictions."""

    def __init__(self, size_bytes: int = WRITEBACK_CACHE_BYTES,
                 assoc: int = WRITEBACK_CACHE_ASSOC,
                 line_bytes: int = LINE_BYTES):
        nsets = size_bytes // (assoc * line_bytes)
        if nsets <= 0:
            raise ValueError("writeback cache too small")
        self.nsets = nsets
        self.assoc = assoc
        self.line_bytes = line_bytes
        self._sets: List[Dict[int, None]] = [dict() for _ in range(nsets)]
        self._count = 0
        self.stats = WritebackCacheStats()

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return self.nsets * self.assoc

    def _set_of(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.nsets

    def insert(self, line_addr: int) -> bool:
        """Buffer a dirty eviction; False when the set is full (the
        block must go to the write buffer instead)."""
        ways = self._sets[self._set_of(line_addr)]
        if line_addr in ways:
            self.stats.inserted += 1
            return True
        if len(ways) >= self.assoc:
            self.stats.rejected += 1
            return False
        ways[line_addr] = None
        self._count += 1
        self.stats.inserted += 1
        return True

    def contains(self, line_addr: int) -> bool:
        """Read-forwarding check: a read that hits here is serviced from
        the buffered dirty data without touching DRAM."""
        hit = line_addr in self._sets[self._set_of(line_addr)]
        if hit:
            self.stats.read_hits += 1
        return hit

    def remove(self, line_addr: int) -> bool:
        """Drop one entry (e.g., forwarded to a demand read-fill)."""
        ways = self._sets[self._set_of(line_addr)]
        if line_addr in ways:
            del ways[line_addr]
            self._count -= 1
            return True
        return False

    def drain_all(self) -> List[int]:
        """Empty the cache; returns the buffered line addresses."""
        out: List[int] = []
        for ways in self._sets:
            out.extend(ways.keys())
            ways.clear()
        self.stats.drained += len(out)
        self._count = 0
        return out

    @property
    def occupancy(self) -> float:
        return self._count / self.capacity
