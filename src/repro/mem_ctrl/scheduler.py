"""FR-FCFS command scheduling with bank fairness (Table IV).

First-Ready First-Come-First-Served: among queued reads, prefer one
that hits an open row (first-ready); fall back to the oldest request.
To keep a stream of row hits from starving other banks ("FR-FCFS
scheduling policy with bank fairness"), at most ``fairness_cap``
consecutive row-hit picks may target the same bank before the oldest
request is forced.  Demand reads outrank prefetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..dram.channel import Channel
from .page_policy import PagePolicy
from .queues import ReadRequest


@dataclass
class SchedulerStats:
    row_hit_picks: int = 0
    oldest_picks: int = 0
    fairness_overrides: int = 0


class FrFcfsScheduler:
    """Selects the next read to issue from a channel's read queue."""

    def __init__(self, page_policy: Optional[PagePolicy] = None,
                 fairness_cap: int = 8, scan_window: int = 64):
        if fairness_cap <= 0:
            raise ValueError("fairness_cap must be positive")
        if scan_window <= 0:
            raise ValueError("scan_window must be positive")
        self.page_policy = page_policy or PagePolicy()
        self.fairness_cap = fairness_cap
        self.scan_window = scan_window
        self._last_bank: Optional[tuple] = None
        self._streak = 0
        self.stats = SchedulerStats()

    def pick(self, queue: List[ReadRequest], channel: Channel,
             now_ns: float,
             rank_of: "callable" = None) -> Optional[int]:
        """Return the queue index of the request to issue, or None when
        the queue is empty.  ``rank_of`` maps a request to the flat rank
        it will actually be served from (``location.rank`` modulo the
        channel's rank count by default); design policies use it to
        redirect reads to replica ranks, and identity policies pass
        None so rank resolution stays inline in the scan loop.

        The queue is arrival-ordered (the event loop processes
        submissions in time order), so the oldest request is index 0;
        row hits are searched within the first ``scan_window`` entries,
        matching real schedulers' bounded associative lookup.
        """
        if not queue:
            return None
        hit_idx: Optional[int] = None
        oldest_idx = 0
        apply_policy = self.page_policy.apply
        prefetch_hit_idx: Optional[int] = None
        other_rank_hit_idx: Optional[int] = None
        bus_rank = channel._last_bus_rank
        # Hot loop: index the queue in place (no per-pick slice copy)
        # and resolve ranks through the channel's cached pair list
        # instead of a locate_rank call per candidate.
        pairs = channel.all_ranks()
        nranks = len(pairs)
        limit = len(queue)
        if limit > self.scan_window:
            limit = self.scan_window
        for i in range(limit):
            req = queue[i]
            loc = req.location
            flat_rank = rank_of(req) if rank_of is not None \
                else loc.rank % nranks
            rank = pairs[flat_rank][1]
            bank = rank.banks[loc.bank]
            apply_policy(bank, now_ns)
            if bank.open_row == loc.row:
                if req.is_prefetch:
                    # Prefetch row hits yield to any demand hit.
                    if prefetch_hit_idx is None:
                        prefetch_hit_idx = i
                    continue
                if bus_rank is None or rank is bus_rank:
                    # Same-rank hit: no bus switching bubble.
                    hit_idx = i
                    break
                if other_rank_hit_idx is None:
                    other_rank_hit_idx = i
        if hit_idx is None:
            hit_idx = other_rank_hit_idx
        if hit_idx is None:
            hit_idx = prefetch_hit_idx
        if hit_idx is not None:
            req = queue[hit_idx]
            flat_rank = rank_of(req) if rank_of is not None \
                else req.location.rank % nranks
            key = (flat_rank, req.location.bank)
            if key == self._last_bank and self._streak >= self.fairness_cap:
                self.stats.fairness_overrides += 1
                self._note(queue[oldest_idx], rank_of, nranks)
                self.stats.oldest_picks += 1
                return oldest_idx
            self._streak = self._streak + 1 if key == self._last_bank else 1
            self._last_bank = key
            self.stats.row_hit_picks += 1
            return hit_idx
        self._note(queue[oldest_idx], rank_of, nranks)
        self.stats.oldest_picks += 1
        return oldest_idx

    def _note(self, req: ReadRequest, rank_of: "callable",
              nranks: int) -> None:
        flat_rank = rank_of(req) if rank_of is not None \
            else req.location.rank % nranks
        key = (flat_rank, req.location.bank)
        if key == self._last_bank:
            self._streak += 1
        else:
            self._last_bank, self._streak = key, 1
