"""Per-channel memory controller.

Implements the steady-state behaviour of Table IV's controller:

* a 256-entry read queue scheduled FR-FCFS with bank fairness,
* a 128-entry write queue drained in batches (write mode),
* hybrid page policy with a 200-cycle timeout,
* periodic refresh per rank (skipped for ranks in self-refresh), and
* design-policy hooks (:mod:`repro.mem_ctrl.policy`) through which
  FMR and Hetero-DMR change replica selection, write broadcasting,
  write-mode entry/exit cost, and batch composition.

Reads are event-driven: up to ``max_inflight`` requests are issued
concurrently and the DRAM bank/bus models serialize them in time.
Write batches drain in 128-write chunks (one bus turnaround each);
between chunks, queued reads slip in at the channel's current —
specification — speed, Hetero-DMR's "no benefit for writes" behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..dram.channel import Channel
from ..dram.frequency import FrequencyState
from ..obs import get_recorder
from .address_map import AddressMapping, MemLocation
from .batch_timing import order_write_batch
from .page_policy import PagePolicy
from .policy import AccessPolicy
from .queues import (READ_QUEUE_ENTRIES, ReadRequest, WRITE_QUEUE_ENTRIES,
                     WriteRequest)
from .scheduler import FrFcfsScheduler
from .writeback_cache import WritebackCache

if TYPE_CHECKING:   # pragma: no cover - typing only
    from ..sim.engine import EventLoop


@dataclass
class ControllerStats:
    """Aggregate controller statistics for one channel."""
    reads_issued: int = 0
    read_retries: int = 0            # back-pressure resubmissions
    writes_issued: int = 0
    write_bursts: int = 0            # bus transactions incl. broadcast
    cleaning_writes: int = 0
    wb_cache_forwards: int = 0
    write_mode_entries: int = 0
    refreshes: int = 0
    write_mode_time_ns: float = 0.0
    read_latency_total_ns: float = 0.0
    read_latency_count: int = 0
    busy_span_ns: float = 0.0

    @property
    def mean_read_latency_ns(self) -> float:
        if not self.read_latency_count:
            return 0.0
        return self.read_latency_total_ns / self.read_latency_count


class ChannelController:
    """Schedules one channel's reads, writes, and refreshes."""

    def __init__(self, engine: "EventLoop", channel: Channel,
                 mapping: AddressMapping,
                 policy: Optional[AccessPolicy] = None,
                 page_policy: Optional[PagePolicy] = None,
                 max_inflight: int = 48,
                 write_high_watermark: int = 96,
                 write_low_watermark: int = 16,
                 enable_refresh: bool = True):
        self.engine = engine
        self.channel = channel
        self.mapping = mapping
        self.policy = policy or AccessPolicy()
        self.page_policy = page_policy or PagePolicy()
        self.scheduler = FrFcfsScheduler(self.page_policy)
        self.max_inflight = max_inflight
        self.write_high = write_high_watermark
        self.write_low = write_low_watermark
        self.read_queue: List[ReadRequest] = []
        self.write_queue: List[WriteRequest] = []
        self.wb_cache: Optional[WritebackCache] = (
            WritebackCache() if self.policy.uses_writeback_cache else None)
        self.mode = "read"
        self.inflight = 0
        self.stats = ControllerStats()
        self._refresh_enabled = enable_refresh
        if enable_refresh:
            self._schedule_refresh()

    # -- submission ---------------------------------------------------------------

    def submit_read(self, address: int, now_ns: float,
                    callback: Callable[[float], None], core_id: int = -1,
                    is_prefetch: bool = False) -> None:
        """Queue a read for ``address``; ``callback(finish_ns)`` fires
        when its data returns."""
        loc = self.mapping.decode(address)
        line = address
        if self.wb_cache is not None and self.wb_cache.contains(line):
            # Forward buffered dirty data without touching DRAM.
            self.stats.wb_cache_forwards += 1
            self.engine.schedule(now_ns + 1.0, lambda: callback(now_ns + 1.0))
            return
        if len(self.read_queue) >= READ_QUEUE_ENTRIES - 8 and is_prefetch:
            # Shed prefetches under pressure; they are hints.  The
            # callback receives None so the issuer can tell no data
            # was fetched.
            self.engine.schedule(now_ns, lambda: callback(None))
            return
        if len(self.read_queue) >= READ_QUEUE_ENTRIES:
            # Back-pressure on demand reads: retry (rare: bounded MLP
            # keeps demand occupancy below the queue size).
            self.stats.read_retries += 1
            self.engine.schedule_in(
                200.0, lambda: self.submit_read(address, self.engine.now,
                                                callback, core_id,
                                                is_prefetch))
            return
        self.read_queue.append(ReadRequest(loc, now_ns, callback, core_id,
                                           is_prefetch))
        self._pump()

    def submit_write(self, address: int, now_ns: float,
                     from_cleaning: bool = False) -> None:
        """Queue a writeback.  Dirty evictions go through the writeback
        cache when the policy has one; overflow lands in the write
        queue, which triggers write mode at its high watermark."""
        loc = self.mapping.decode(address)
        if self.wb_cache is not None and not from_cleaning:
            if self.wb_cache.insert(address):
                if (self.wb_cache.occupancy >= 0.95 and
                        self.mode == "read"):
                    self._enter_write_mode()
                return
        self.write_queue.append(WriteRequest(loc, now_ns, from_cleaning))
        if len(self.write_queue) >= self.write_high and self.mode == "read":
            self._enter_write_mode()

    def drain(self) -> None:
        """Flush all buffered writes (end of simulation)."""
        if self.mode == "read" and (self.write_queue or
                                    (self.wb_cache and len(self.wb_cache))):
            self._enter_write_mode(force_full_drain=True)

    def stop(self) -> None:
        """Stop the periodic refresh so the event loop can drain."""
        self._refresh_enabled = False

    # -- read pump -----------------------------------------------------------------

    def _pump(self) -> None:
        # Reads are also served while a write batch drains: the channel
        # is at specification then (Hetero-DMR's "no benefit for
        # writes" — not "no service"), and the bus model naturally
        # interleaves read bursts into gaps between write chunks.
        now = self.engine.now
        # Identity policies resolve ranks inline inside the scheduler's
        # scan loop (rank_of=None) instead of paying the read_rank call
        # chain per candidate.
        rank_of = None if self.policy.identity_read_rank else self._rank_of
        while self.inflight < self.max_inflight and self.read_queue:
            idx = self.scheduler.pick(self.read_queue, self.channel, now,
                                      rank_of=rank_of)
            if idx is None:
                break
            req = self.read_queue.pop(idx)
            self._issue_read(req, now)

    def _rank_of(self, req: ReadRequest) -> int:
        return self.policy.read_rank(self.channel, req, self.engine.now)

    def _issue_read(self, req: ReadRequest, now_ns: float) -> None:
        flat_rank = self._rank_of(req)
        _, rank = self.channel.locate_rank(flat_rank)
        self.page_policy.apply(rank.banks[req.location.bank], now_ns)
        finish = self.channel.access(flat_rank, req.location.bank,
                                     req.location.row, now_ns,
                                     is_write=False)
        finish = self.policy.on_read_complete(self.channel, req, finish)
        self.inflight += 1
        self.stats.reads_issued += 1
        self.engine.schedule(finish, lambda: self._complete_read(req, finish))

    def _complete_read(self, req: ReadRequest, finish_ns: float) -> None:
        self.inflight -= 1
        self.stats.read_latency_total_ns += finish_ns - req.arrival_ns
        self.stats.read_latency_count += 1
        req.callback(finish_ns)
        self._pump()

    # -- write mode ------------------------------------------------------------------

    def _enter_write_mode(self, force_full_drain: bool = False) -> None:
        if self.mode != "read":
            return
        self.mode = "write"
        self.stats.write_mode_entries += 1
        self._write_mode_started_ns = self.engine.now
        now = self.engine.now
        rec = get_recorder()
        if rec.enabled:
            rec.counter("mem_ctrl", "write_mode_entries",
                        channel=self.channel.index)
            rec.event("mem_ctrl", "write_mode_enter", now,
                      channel=self.channel.index,
                      read_queue_depth=len(self.read_queue),
                      write_queue_depth=len(self.write_queue),
                      full_drain=force_full_drain)
        # Let already-inflight reads finish while the switch happens.
        start = self.policy.enter_write_mode(self.channel, now)

        def _do_batch() -> None:
            self._execute_write_batch(self.engine.now, force_full_drain)

        self.engine.schedule(start, _do_batch)

    def _execute_write_batch(self, now_ns: float,
                             force_full_drain: bool) -> None:
        batch: List[WriteRequest] = []
        if force_full_drain:
            batch.extend(self.write_queue)
            self.write_queue = []
        else:
            keep = 0 if self.wb_cache is not None else self.write_low
            while len(self.write_queue) > keep:
                batch.append(self.write_queue.pop(0))
        if self.wb_cache is not None:
            for addr in self.wb_cache.drain_all():
                batch.append(WriteRequest(self.mapping.decode(addr),
                                          now_ns))
        for addr in self.policy.write_batch_extra(now_ns):
            batch.append(WriteRequest(self.mapping.decode(addr), now_ns,
                                      from_cleaning=True))
            self.stats.cleaning_writes += 1
        # Write-mode scheduling: writes are drained first-ready — same-
        # row writes back to back within a bank, banks interleaved
        # round-robin so their row cycles overlap and the data bus
        # stays packed.  Large batches order through numpy integer
        # sorts (bit-identical permutation; see mem_ctrl.batch_timing).
        self._write_chunks(order_write_batch(batch), 0)

    #: Writes drained per read<->write bus turnaround, as in a
    #: conventional 128-entry write buffer drain.
    WRITE_CHUNK = 128

    def _write_chunks(self, batch: List[WriteRequest], start: int) -> None:
        """Drain ``batch[start:start+chunk]``, then yield the bus so
        queued reads can interleave, then continue with the rest."""
        if start >= len(batch):
            end = self.policy.exit_write_mode(self.channel, self.engine.now)
            self.engine.schedule(end, self._exit_write_mode)
            return
        now_ns = self.engine.now
        broadcast = self.policy.broadcast_writes
        # Bus turnaround into write mode for this chunk.
        from .policy import CONVENTIONAL_TURNAROUND_NS
        self.channel.bus_free_ns = max(self.channel.bus_free_ns,
                                       now_ns) + CONVENTIONAL_TURNAROUND_NS
        t = now_ns
        for wr in batch[start:start + self.WRITE_CHUNK]:
            flat_rank = wr.location.rank % self.channel.rank_count()
            _, rank = self.channel.locate_rank(flat_rank)
            if broadcast:
                # Every awake module's same-numbered bank latches the
                # broadcast write; apply the page policy to each.
                for module in self.channel.modules:
                    if not module.in_self_refresh:
                        for rnk in module.ranks:
                            self.page_policy.apply(
                                rnk.banks[wr.location.bank], t)
            else:
                self.page_policy.apply(rank.banks[wr.location.bank], t)
            t = self.channel.access(flat_rank, wr.location.bank,
                                    wr.location.row, now_ns, is_write=True,
                                    broadcast=broadcast)
            self.stats.writes_issued += 1
            self.stats.write_bursts += self.policy.writes_per_transaction()
        # Turnaround back to reads, then let queued reads slip in
        # before the next chunk.
        self.channel.bus_free_ns += CONVENTIONAL_TURNAROUND_NS
        self.engine.schedule(t, lambda: self._write_chunks(
            batch, start + self.WRITE_CHUNK))
        self._pump()

    def _exit_write_mode(self) -> None:
        self.mode = "read"
        span_ns = self.engine.now - self._write_mode_started_ns
        self.stats.write_mode_time_ns += span_ns
        rec = get_recorder()
        if rec.enabled:
            rec.event("mem_ctrl", "write_mode_exit", self.engine.now,
                      channel=self.channel.index, span_ns=span_ns)
        self._pump()

    # -- refresh ----------------------------------------------------------------------

    def _schedule_refresh(self) -> None:
        self.engine.schedule_in(self.channel.timing_table.tREFI_ns,
                                self._do_refresh)

    def _do_refresh(self) -> None:
        if not self._refresh_enabled:
            return
        now = self.engine.now
        # Refresh only ranks that are awake; self-refreshing ranks (the
        # original-holding modules under Hetero-DMR) manage themselves.
        # Skip REF while a write batch holds the channel (deferred
        # refresh, per-bank pull-in is out of scope).
        if self.mode == "read":
            timing = self.channel.timing_table
            for module in self.channel.modules:
                for rank in module.ranks:
                    if not rank.in_self_refresh:
                        rank.refresh(now, timing)
                        self.stats.refreshes += 1
        self._schedule_refresh()


class MemoryController:
    """Multi-channel facade: routes requests by decoded channel index."""

    def __init__(self, engine: "EventLoop", channels: List[Channel],
                 mapping: AddressMapping,
                 policy_factory: Callable[[int], AccessPolicy],
                 page_policy: Optional[PagePolicy] = None,
                 enable_refresh: bool = True):
        if mapping.channels != len(channels):
            raise ValueError("mapping channel count mismatch")
        self.mapping = mapping
        self.controllers = [
            ChannelController(engine, ch, mapping, policy_factory(i),
                              page_policy, enable_refresh=enable_refresh)
            for i, ch in enumerate(channels)]

    def submit_read(self, address: int, now_ns: float,
                    callback: Callable[[float], None], core_id: int = -1,
                    is_prefetch: bool = False) -> None:
        loc = self.mapping.decode(address)
        self.controllers[loc.channel].submit_read(
            address, now_ns, callback, core_id, is_prefetch)

    def submit_write(self, address: int, now_ns: float) -> None:
        loc = self.mapping.decode(address)
        self.controllers[loc.channel].submit_write(address, now_ns)

    def drain(self) -> None:
        for ctrl in self.controllers:
            ctrl.drain()
