"""Memory-controller request queues (Table IV: 256-entry read queue and
128-entry write queue per channel)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .address_map import MemLocation


@dataclass
class ReadRequest:
    """A pending DRAM read."""
    location: MemLocation
    arrival_ns: float
    callback: Callable[[float], None]
    core_id: int = -1
    is_prefetch: bool = False


@dataclass
class WriteRequest:
    """A pending DRAM write(back)."""
    location: MemLocation
    arrival_ns: float
    from_cleaning: bool = False


class BoundedQueue:
    """A simple bounded FIFO with occupancy stats."""

    def __init__(self, capacity: int, name: str):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.entries: List[object] = []
        self.peak_occupancy = 0
        self.total_enqueued = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def push(self, item: object) -> None:
        if self.full:
            raise RuntimeError("{} queue overflow".format(self.name))
        self.entries.append(item)
        self.total_enqueued += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self.entries))

    def pop_index(self, index: int) -> object:
        return self.entries.pop(index)

    def pop_front(self) -> object:
        return self.entries.pop(0)


#: Table IV queue capacities.
READ_QUEUE_ENTRIES = 256
WRITE_QUEUE_ENTRIES = 128
