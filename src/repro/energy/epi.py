"""System-level Energy Per Instruction (Figure 13).

Combines the CPU model and the DRAM event-energy model over a node
simulation's measured counters.  The design differences appear exactly
as in the paper:

* broadcast writes burn 2x (Hetero-DMR) or 3x (Hetero-DMR+FMR) write
  burst energy,
* the original-holding modules spend read mode in self-refresh (lower
  background power),
* faster execution cuts the dominant static CPU energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.power import DramPowerParams
from ..sim.node import NodeResult
from .cpu_power import CpuPowerParams


@dataclass(frozen=True)
class EpiBreakdown:
    """Energy accounting for one simulated run."""
    cpu_joules: float
    dram_dynamic_joules: float
    dram_background_joules: float
    instructions: float

    @property
    def total_joules(self) -> float:
        return (self.cpu_joules + self.dram_dynamic_joules +
                self.dram_background_joules)

    @property
    def epi_nj(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return self.total_joules / self.instructions * 1e9

    @property
    def dram_share(self) -> float:
        total = self.total_joules
        if total <= 0:
            return 0.0
        return (self.dram_dynamic_joules +
                self.dram_background_joules) / total


def node_epi(result: NodeResult,
             cpu: CpuPowerParams = CpuPowerParams(),
             dram: DramPowerParams = DramPowerParams()) -> EpiBreakdown:
    """Compute the EPI breakdown for one node-simulation result."""
    time_s = result.time_ns * 1e-9
    cores = result.config.hierarchy.cores
    cpu_j = cpu.energy_joules(cores, time_s, result.instructions)
    # Dynamic DRAM energy: activates plus read/write bursts.  Broadcast
    # writes are already expanded into write_bursts by the controller.
    dyn_j = (result.activates * dram.activate_nj +
             result.dram_reads * dram.read_burst_nj +
             result.dram_write_bursts * dram.write_burst_nj +
             result.refreshes * dram.refresh_nj) * 1e-9
    # Background: every rank pays active power except while in
    # self-refresh (Hetero-DMR's sleeping originals).
    hier = result.config.hierarchy
    total_ranks = (hier.channels * hier.modules_per_channel *
                   hier.ranks_per_module)
    rank_seconds = total_ranks * time_s
    sr_seconds = result.self_refresh_rank_ns * 1e-9
    bg_j = ((rank_seconds - sr_seconds) * dram.background_active_w +
            sr_seconds * dram.background_self_refresh_w)
    return EpiBreakdown(cpu_joules=cpu_j, dram_dynamic_joules=dyn_j,
                        dram_background_joules=max(0.0, bg_j),
                        instructions=result.instructions)


def normalized_epi(result: NodeResult, baseline: NodeResult,
                   cpu: CpuPowerParams = CpuPowerParams(),
                   dram: DramPowerParams = DramPowerParams()) -> float:
    """EPI of ``result`` normalized to ``baseline`` (Figure 13's bars)."""
    return node_epi(result, cpu, dram).epi_nj / \
        node_epi(baseline, cpu, dram).epi_nj
