"""System-level energy models (CPU + DRAM -> EPI, Figure 13)."""

from .cpu_power import CpuPowerParams
from .epi import EpiBreakdown, node_epi, normalized_epi

__all__ = ["CpuPowerParams", "EpiBreakdown", "node_epi", "normalized_epi"]
