"""CPU power model for the system-level EPI analysis (Figure 13).

The paper's energy argument: "CPU idle power dominates dynamic power;
Hetero-DMR improves CPU idle energy by improving performance, which
outweighs the energy overheads of extra writes", and memory has shrunk
to ~18% of system power (Barroso et al., 2018).  A simple two-term
model captures that: a static/idle power proportional to the core
count plus a dynamic energy per instruction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuPowerParams:
    """Per-core power parameters (Xeon W-3175X class: 255 W / 28 cores
    with roughly 60/40 static-vs-peak-dynamic split)."""
    static_w_per_core: float = 5.5
    dynamic_nj_per_instruction: float = 0.9
    uncore_w: float = 18.0

    def energy_joules(self, cores: int, time_s: float,
                      instructions: float) -> float:
        """Total CPU energy over an interval."""
        if time_s < 0 or instructions < 0:
            raise ValueError("time and instructions must be non-negative")
        static = (self.static_w_per_core * cores + self.uncore_w) * time_s
        dynamic = self.dynamic_nj_per_instruction * instructions * 1e-9
        return static + dynamic
