"""Trace-driven core model.

Approximates the 4-wide out-of-order core of Table IV (224-entry ROB)
with the two properties that dominate memory-system studies:

* bounded memory-level parallelism — at most ``mlp_limit`` misses may
  be outstanding (the ROB fills while waiting), and
* serialization on dependent loads — a ``dependent`` reference cannot
  issue until every earlier miss has returned.

The core advances through its trace accumulating compute time from the
records' gap cycles; on-chip cache hit latency is charged when the hit
is dependent (otherwise the OoO window hides it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .trace import TraceRecord, instructions_of

#: Default outstanding-miss bound: a 224-entry ROB at ~20 instructions
#: per memory reference sustains roughly ten in-flight misses.
DEFAULT_MLP_LIMIT = 10


@dataclass
class CoreStats:
    """Retired work and stall accounting for one core."""
    instructions: float = 0.0
    references: int = 0
    misses_issued: int = 0
    mlp_stall_ns: float = 0.0
    dependency_stall_ns: float = 0.0
    finish_ns: float = 0.0


class Core:
    """One core's execution state over its trace."""

    def __init__(self, core_id: int, trace: Iterator[TraceRecord],
                 cpu_ghz: float = 3.1, mlp_limit: int = DEFAULT_MLP_LIMIT):
        if mlp_limit <= 0:
            raise ValueError("mlp_limit must be positive")
        self.core_id = core_id
        self.trace = trace
        self.cpu_ghz = cpu_ghz
        self.mlp_limit = mlp_limit
        self.time_ns = 0.0
        self.outstanding = 0
        self.pending: Optional[TraceRecord] = None
        self.done = False
        self.blocked_on_mlp = False
        self.blocked_on_dependency = False
        self.stats = CoreStats()

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.cpu_ghz

    def next_record(self) -> Optional[TraceRecord]:
        """Fetch the next trace record (the pending one if execution
        previously blocked); None when the trace is exhausted."""
        if self.pending is not None:
            rec, self.pending = self.pending, None
            return rec
        rec = next(self.trace, None)
        if rec is None:
            self.done = True
            return None
        self.stats.instructions += instructions_of(rec)
        self.stats.references += 1
        return rec

    def can_issue(self, record: TraceRecord) -> bool:
        """May this reference issue right now?"""
        if record.dependent and self.outstanding > 0:
            return False
        return self.outstanding < self.mlp_limit

    def block(self, record: TraceRecord) -> None:
        """Remember the record that could not issue."""
        self.pending = record
        if record.dependent and self.outstanding > 0:
            self.blocked_on_dependency = True
        else:
            self.blocked_on_mlp = True

    def miss_returned(self, now_ns: float) -> None:
        """A memory request for this core completed."""
        if self.outstanding <= 0:
            raise RuntimeError("miss completion with none outstanding")
        self.outstanding -= 1
        if self.blocked_on_dependency and self.outstanding == 0:
            self.stats.dependency_stall_ns += max(0.0, now_ns - self.time_ns)
            self.time_ns = max(self.time_ns, now_ns)
            self.blocked_on_dependency = False
        if self.blocked_on_mlp:
            self.stats.mlp_stall_ns += max(0.0, now_ns - self.time_ns)
            self.time_ns = max(self.time_ns, now_ns)
            self.blocked_on_mlp = False

    @property
    def runnable(self) -> bool:
        """Has unissued work and is not blocked."""
        if self.done and self.pending is None:
            return False
        return not (self.blocked_on_mlp or self.blocked_on_dependency)
