"""Trace-driven core model (Table IV core parameters)."""

from .core import Core, CoreStats, DEFAULT_MLP_LIMIT
from .trace import COMPUTE_IPC, TraceRecord, instructions_of

__all__ = ["COMPUTE_IPC", "Core", "CoreStats", "DEFAULT_MLP_LIMIT",
           "TraceRecord", "instructions_of"]
