"""Memory-reference trace records.

The node simulator is trace-driven: each workload generator yields a
stream of :class:`TraceRecord` items at L2-reference granularity (L1
hits are folded into ``gap_cycles``, the compute time separating
consecutive L2 references).

``dependent`` marks references whose address depends on the previous
load's value (pointer chasing); the core cannot issue them until all
earlier misses return, which is what makes graph workloads
latency-bound rather than bandwidth-bound.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple


class TraceRecord(NamedTuple):
    """One L2-level memory reference."""
    address: int        # byte address
    is_write: bool
    gap_cycles: int     # compute cycles since the previous reference
    dependent: bool     # address depends on the previous load


#: Instructions retired per compute cycle between memory references;
#: used to convert gap cycles into an instruction count for IPC/EPI.
COMPUTE_IPC = 2.0


def instructions_of(record: TraceRecord) -> float:
    """Instruction count represented by one trace record: the memory
    instruction itself plus the compute burst preceding it."""
    return 1.0 + record.gap_cycles * COMPUTE_IPC


TraceIterator = Iterator[TraceRecord]
