"""Crash recovery for margin-exploiting nodes.

The paper's safety argument assumes the bookkeeping survives: epoch
error counts bound SDC exposure and the degradation ladder decides
whether a module may run fast at all.  This package makes that state
durable and restorable — versioned checksummed checkpoints
(:mod:`~repro.recovery.checkpoint`), checkpoint + registry-WAL replay
with conservative rounding (:mod:`~repro.recovery.manager`), and
supervised restarts with a crash-loop budget
(:mod:`~repro.recovery.supervisor`).  DESIGN.md §9 documents the
recovery model and its invariants.
"""

from .checkpoint import (CHECKPOINT_FORMAT, Checkpoint, CheckpointError,
                         CheckpointStore)
from .manager import RecoveredState, RecoveryManager
from .supervisor import NodeSupervisor, RestartDecision, SupervisorEvent

__all__ = [
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "RecoveredState",
    "RecoveryManager",
    "NodeSupervisor",
    "RestartDecision",
    "SupervisorEvent",
]
