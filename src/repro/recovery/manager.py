"""Checkpoint + WAL-replay recovery for one Hetero-DMR node.

:class:`RecoveryManager` owns the restart story: capture the node's
runtime state into a :class:`~repro.recovery.checkpoint.CheckpointStore`
periodically, and after a crash rebuild the state from two durable
sources — the newest checkpoint that verifies, plus the
:class:`~repro.fleet.registry.MarginRegistry` events recorded after it
(the write-ahead log).  The combination reconverges the node view with
the fleet view exactly: the checkpoint restores counters and armed
state, the WAL restores every rung change the fleet already knows
about.

Restores are *conservative* by construction:

* epoch-guard counters come back exactly as checkpointed — never fewer
  errors, and a tripped epoch stays tripped until its boundary truly
  passes;
* the restored rung is the one named by the last durable registry
  event; when only a margin (not an exact rung) is durable, the
  mapping rounds toward specification and never resurrects the
  latency-margin rung;
* retirement is sticky across either source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..core.epoch_guard import EpochGuard
from ..errors.telemetry import MarginAdvisor
from ..fleet.registry import MarginRegistry, RegistryEvent
from ..obs import get_recorder
from .checkpoint import Checkpoint, CheckpointStore

if TYPE_CHECKING:   # real imports are deferred into method bodies so
    # repro.recovery and repro.resilience stay importable in either
    # order (resilience.campaign imports this package).
    from ..resilience.degradation import (DegradationController,
                                          LadderRung)


@dataclass
class RecoveredState:
    """Everything :meth:`RecoveryManager.recover` learned from durable
    storage, ready to rebuild the runtime objects."""
    node: int
    checkpoint: Optional[Checkpoint]
    fallbacks: int                  # corrupt checkpoints skipped
    replayed_events: int            # registry events newer than ckpt
    wal_complete: bool              # event-by-event replay possible?
    wal_rung_index: Optional[int]   # net rung from the WAL, if any
    wal_retired: bool
    ladder: List[LadderRung] = field(default_factory=list)

    @property
    def checkpoint_seq(self) -> int:
        """Registry seq the restored state is consistent with."""
        return self.checkpoint.seq if self.checkpoint is not None else 0

    def section(self, name: str) -> Optional[Dict[str, object]]:
        """One ``to_state()`` dict out of the checkpoint, if present."""
        if self.checkpoint is None:
            return None
        return self.checkpoint.state.get(name)

    def durable_rung(self) -> Optional[LadderRung]:
        """The rung the durable record says the node may run at — the
        WAL's answer when it has one, else the checkpoint's.  ``None``
        when neither source knows a ladder."""
        if not self.ladder:
            return None
        if self.wal_retired:
            return self.ladder[-1]
        if self.wal_rung_index is not None:
            return self.ladder[self.wal_rung_index]
        ctl = self.section("controller")
        if ctl is None:
            return None
        if bool(ctl["retired"]):
            return self.ladder[-1]
        return self.ladder[min(int(ctl["rung_index"]),
                               len(self.ladder) - 1)]


class RecoveryManager:
    """Capture and restore one node's safety-critical runtime state."""

    def __init__(self, store: CheckpointStore,
                 registry: Optional[MarginRegistry] = None,
                 node: int = 0):
        self.store = store
        self.registry = registry
        self.node = node
        self.checkpoints_written = 0

    # -- capture ------------------------------------------------------------------

    def checkpoint_state(self, state: Dict[str, Dict[str, object]],
                         now_ns: float) -> Checkpoint:
        """Durably write a checkpoint of pre-serialized sections,
        stamped with the registry's current sequence number."""
        seq = self.registry.last_seq if self.registry is not None else 0
        ckpt = Checkpoint(node=self.node, seq=seq, time_ns=now_ns,
                          state=state)
        self.store.write(ckpt)
        self.checkpoints_written += 1
        rec = get_recorder()
        if rec.enabled:
            rec.counter("recovery", "checkpoints")
            rec.event("recovery", "checkpoint", now_ns, seq=seq,
                      node=self.node)
        return ckpt

    def capture(self, guard: EpochGuard,
                controller: DegradationController,
                advisor: MarginAdvisor, now_ns: float) -> Checkpoint:
        """Checkpoint the three runtime objects' ``to_state()`` dicts."""
        return self.checkpoint_state(
            {"epoch_guard": guard.to_state(),
             "controller": controller.to_state(),
             "advisor": advisor.to_state()}, now_ns)

    # -- restore ------------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Read the durable record: latest valid checkpoint (falling
        back past corrupt ones) plus the registry WAL replayed from the
        checkpoint's sequence number.  Pure read — call it once and
        rebuild every runtime object from the result."""
        rec = get_recorder()
        with rec.timer("recovery", "restore_s"):
            ckpt, fallbacks = self.store.load_latest()
            ladder = self._ladder_for(ckpt)
            replayed = 0
            wal_rung: Optional[int] = None
            wal_retired = False
            complete = True
            if self.registry is not None:
                seq = ckpt.seq if ckpt is not None else 0
                events, complete = self.registry.events_since(
                    seq, node=self.node)
                if complete:
                    replayed = len(events)
                    wal_rung, wal_retired = self._replay(ladder, events)
                else:
                    # Events between the checkpoint and the snapshot
                    # fold are gone; the replayed NodeRecord *is* their
                    # net effect — use it as the durable cap.
                    wal_rung, wal_retired = self._from_record(ladder)
        if rec.enabled:
            rec.counter("recovery", "restores")
            rec.counter("recovery", "events_replayed", replayed)
            rec.event("recovery", "restore",
                      ckpt.time_ns if ckpt is not None else 0.0,
                      node=self.node, replayed_events=replayed,
                      fallbacks=fallbacks, wal_complete=complete)
        return RecoveredState(node=self.node, checkpoint=ckpt,
                              fallbacks=fallbacks,
                              replayed_events=replayed,
                              wal_complete=complete,
                              wal_rung_index=wal_rung,
                              wal_retired=wal_retired, ladder=ladder)

    def _ladder_for(self, ckpt: Optional[Checkpoint]
                    ) -> List["LadderRung"]:
        from ..resilience.degradation import LadderRung, build_ladder
        if ckpt is not None and "controller" in ckpt.state:
            return [LadderRung(str(n), int(m), bool(lat)) for n, m, lat
                    in ckpt.state["controller"]["ladder"]]
        if self.registry is not None and \
                self.registry.has_node(self.node):
            rec = self.registry.node(self.node)
            if rec.margin_mts is not None:
                return build_ladder(rec.margin_mts)
        return []

    def _replay(self, ladder: Sequence["LadderRung"],
                events: Sequence[RegistryEvent]):
        """Fold post-checkpoint registry events into a net rung.  The
        last durable event wins; rung names recorded in event reasons
        are matched exactly, anything else maps conservatively."""
        from ..resilience.degradation import rung_index_for_margin
        rung: Optional[int] = None
        retired = False
        names = {r.name: i for i, r in enumerate(ladder)}
        for event in events:
            if event.kind == "retire":
                retired = True
            elif event.kind in ("demote", "promote", "profile",
                                "adapt") and ladder:
                reason = str(event.payload.get("reason", ""))
                if reason in names:
                    rung = names[reason]
                else:
                    rung = rung_index_for_margin(
                        ladder, int(event.payload["margin_mts"]))
        return rung, retired

    def _from_record(self, ladder: Sequence["LadderRung"]):
        from ..resilience.degradation import rung_index_for_margin
        if self.registry is None or \
                not self.registry.has_node(self.node):
            return None, False
        rec = self.registry.node(self.node)
        if rec.retired:
            return None, True
        if not ladder:
            return None, False
        return rung_index_for_margin(ladder,
                                     rec.effective_margin_mts), False

    # -- rebuild helpers ----------------------------------------------------------

    def restore_guard(self, recovered: RecoveredState
                      ) -> Optional[EpochGuard]:
        """An :class:`EpochGuard` carrying the checkpointed counters,
        or ``None`` when the checkpoint had no guard section (caller
        builds a fresh guard — zero durable errors is exactly what the
        record says)."""
        state = recovered.section("epoch_guard")
        return EpochGuard.from_state(state) if state is not None \
            else None

    def restore_advisor(self, recovered: RecoveredState
                        ) -> Optional[MarginAdvisor]:
        """A :class:`MarginAdvisor` with the checkpointed telemetry
        windows, or ``None`` without one."""
        state = recovered.section("advisor")
        return MarginAdvisor.from_state(state) if state is not None \
            else None

    def rebuild_controller(self, manager, advisor,
                           recovered: RecoveredState,
                           now_ns: float = 0.0,
                           controller_cls=None,
                           **kwargs) -> "DegradationController":
        """A :class:`DegradationController` restored from the
        checkpoint with the WAL's net rung applied on top (see
        :meth:`DegradationController.from_state` for the conservative
        semantics).  Without a checkpointed controller section the
        node restarts at the WAL rung — or at specification when even
        that is unknown.  ``controller_cls`` swaps in a controller
        subclass (e.g. the adaptive controller) while keeping the same
        restore semantics — ``from_state`` is a classmethod."""
        from ..resilience.degradation import DegradationController
        if controller_cls is None:
            controller_cls = DegradationController
        state = recovered.section("controller")
        if state is None:
            ladder = kwargs.pop("ladder", None) or \
                recovered.ladder or None
            hook = kwargs.pop("on_rung_change", None)
            ctl = controller_cls(manager, advisor,
                                 ladder=ladder,
                                 on_rung_change=None, **kwargs)
            index = recovered.wal_rung_index
            ctl.rung_index = ctl.spec_index if index is None \
                else min(index, ctl.spec_index)
            ctl.retired = recovered.wal_retired
            if ctl.retired:
                ctl.rung_index = ctl.spec_index
            ctl._apply_rung(now_ns)
            ctl.on_rung_change = hook
            if hook is not None:
                hook(ctl.current_rung)
            return ctl
        return controller_cls.from_state(
            manager, advisor, state, now_ns=now_ns,
            wal_rung_index=recovered.wal_rung_index,
            wal_retired=recovered.wal_retired, **kwargs)
