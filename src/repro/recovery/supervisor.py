"""Node supervision: heartbeats, bounded restarts, crash-loop budget.

A crashed node is only worth restarting while crashes are rare; a node
crashing in a loop is a hardware problem wearing a software costume.
:class:`NodeSupervisor` encodes that policy deterministically:

* **heartbeats** — the node process pings the supervisor; a silence
  longer than ``heartbeat_timeout_ns`` is treated as a crash,
* **bounded restarts** — each crash inside the rolling budget window
  schedules a restart after exponential backoff with deterministic
  seeded jitter (no wall clock, no shared RNG: the jitter depends only
  on ``(seed, node, attempt)``),
* **restart budget** — more than ``max_restarts`` crashes inside
  ``budget_window_ns`` exhausts the budget: the node is demoted to
  specification permanently via a registry ``retire`` event and the
  supervisor stops scheduling restarts.

Every decision is returned as a :class:`RestartDecision` so callers
(the chaos campaign, a fleet service) drive the clock themselves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..core.backoff import BackoffPolicy
from ..fleet.registry import MarginRegistry

NS_PER_HOUR = 3_600_000_000_000.0


@dataclass(frozen=True)
class RestartDecision:
    """The supervisor's verdict on one crash."""
    action: str          # 'restart' | 'retire'
    attempt: int         # crash count inside the budget window
    restart_at_ns: float  # when to bring the node back (restart only)
    backoff_ns: float    # backoff + jitter applied (restart only)
    reason: str


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervision action, for reports and debugging."""
    time_ns: float
    kind: str            # heartbeat-miss | crash | restart | retire
    detail: str


class NodeSupervisor:
    """Watches one node: heartbeat liveness, restart scheduling."""

    def __init__(self, node: int = 0,
                 registry: Optional[MarginRegistry] = None,
                 heartbeat_timeout_ns: float = 30e9,
                 max_restarts: int = 5,
                 budget_window_ns: float = NS_PER_HOUR,
                 backoff_base_ns: float = 1e9,
                 backoff_cap_ns: float = 60e9,
                 jitter_fraction: float = 0.25,
                 seed: int = 0):
        if heartbeat_timeout_ns <= 0 or budget_window_ns <= 0:
            raise ValueError("timeouts must be positive")
        if max_restarts < 1:
            raise ValueError("max_restarts must be at least 1")
        if not 0.0 <= jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        self.node = node
        self.registry = registry
        self.heartbeat_timeout_ns = heartbeat_timeout_ns
        self.max_restarts = max_restarts
        self.budget_window_ns = budget_window_ns
        self.backoff_base_ns = backoff_base_ns
        self.backoff_cap_ns = backoff_cap_ns
        self.jitter_fraction = jitter_fraction
        self.seed = seed
        self.state = "running"   # running | restarting | retired
        self.restarts_total = 0
        self.events: List[SupervisorEvent] = []
        self._last_heartbeat_ns = 0.0
        self._crash_times: Deque[float] = deque()

    # -- liveness -----------------------------------------------------------------

    def heartbeat(self, now_ns: float) -> None:
        """The node reports liveness."""
        self._last_heartbeat_ns = max(self._last_heartbeat_ns, now_ns)

    def check(self, now_ns: float) -> Optional[RestartDecision]:
        """Health check: a running node silent past the heartbeat
        timeout is declared crashed.  Returns the resulting decision,
        or ``None`` while the node looks healthy."""
        if self.state != "running":
            return None
        if now_ns - self._last_heartbeat_ns <= self.heartbeat_timeout_ns:
            return None
        self.events.append(SupervisorEvent(
            now_ns, "heartbeat-miss",
            "silent for {:.1f}s".format(
                (now_ns - self._last_heartbeat_ns) / 1e9)))
        return self.report_crash(now_ns, reason="missed heartbeat")

    # -- crash handling ------------------------------------------------------------

    def backoff_policy(self) -> BackoffPolicy:
        """The restart-backoff curve (shared :mod:`repro.core.backoff`
        formula; the jitter of attempt ``k`` depends only on
        ``(seed, node, k)``)."""
        return BackoffPolicy(base=self.backoff_base_ns,
                             cap=self.backoff_cap_ns,
                             jitter_fraction=self.jitter_fraction,
                             seed=self.seed)

    def report_crash(self, now_ns: float,
                     reason: str = "crash") -> RestartDecision:
        """Record one crash and decide: restart (with backoff) while
        the budget holds, retire the node once it is exhausted."""
        if self.state == "retired":
            return RestartDecision("retire", len(self._crash_times),
                                   now_ns, 0.0, "already retired")
        horizon = now_ns - self.budget_window_ns
        while self._crash_times and self._crash_times[0] < horizon:
            self._crash_times.popleft()
        self._crash_times.append(now_ns)
        attempt = len(self._crash_times)
        if attempt > self.max_restarts:
            self.state = "retired"
            detail = ("crash loop: {} crashes inside {:.2f}h budget "
                      "({})".format(attempt,
                                    self.budget_window_ns / NS_PER_HOUR,
                                    reason))
            self.events.append(SupervisorEvent(now_ns, "retire", detail))
            if self.registry is not None:
                self.registry.record_retirement(
                    self.node, time_s=now_ns / 1e9, reason=detail)
            return RestartDecision("retire", attempt, now_ns, 0.0,
                                   detail)
        self.state = "restarting"
        backoff = self.backoff_policy().delay(attempt, key=self.node)
        self.events.append(SupervisorEvent(
            now_ns, "crash",
            "{} (attempt {}/{}, backoff {:.3f}s)".format(
                reason, attempt, self.max_restarts, backoff / 1e9)))
        return RestartDecision("restart", attempt, now_ns + backoff,
                               backoff, reason)

    def restarted(self, now_ns: float) -> None:
        """The node came back: resume liveness tracking."""
        if self.state == "retired":
            raise RuntimeError("retired node cannot restart")
        self.state = "running"
        self.restarts_total += 1
        self.heartbeat(now_ns)
        self.events.append(SupervisorEvent(now_ns, "restart",
                                           "node back online"))

    @property
    def retired(self) -> bool:
        """Has the restart budget been exhausted?"""
        return self.state == "retired"
