"""Versioned, checksummed checkpoints of per-node runtime state.

A Hetero-DMR node's safety-critical runtime state — the epoch guard's
error budget, the degradation ladder's rung and armed signals, the
margin advisor's telemetry windows — lives in process memory and dies
with a crash.  This module makes it durable: a :class:`Checkpoint` is a
canonical-JSON document carrying a format version, the registry
sequence number it is consistent with, and a SHA-256 checksum over the
body; a :class:`CheckpointStore` writes them with the registry's
tmp+fsync+replace+dir-fsync discipline, keeps a bounded history, and on
load falls back past corrupt files to the newest checkpoint that still
verifies.

Checkpoints alone are not enough — events recorded to the
:class:`~repro.fleet.registry.MarginRegistry` after the checkpoint are
the durable truth for rung changes.  ``repro.recovery.manager``
combines both (checkpoint + WAL replay).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..fleet.registry import canonical_json, fsync_dir

#: Checkpoint schema version (bumped on incompatible changes).
CHECKPOINT_FORMAT = 1

_NAME_RE = re.compile(r"^checkpoint-(\d{8})\.json$")


class CheckpointError(Exception):
    """A checkpoint file is missing, corrupt, or failed verification."""


def _checksum(body: Dict[str, object]) -> str:
    """SHA-256 over the canonical body serialization."""
    return hashlib.sha256(
        canonical_json(body).encode("ascii")).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """One durable snapshot of a node's runtime state.

    ``seq`` is the :class:`~repro.fleet.registry.MarginRegistry`
    sequence number the state is consistent with: recovery replays
    registry events with seq strictly greater.  ``state`` maps section
    names (``epoch_guard``, ``controller``, ``advisor``) to the
    ``to_state()`` dicts of the corresponding runtime objects.
    """
    node: int
    seq: int
    time_ns: float
    state: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical serialization with an embedded checksum."""
        body = {"format": CHECKPOINT_FORMAT, "node": self.node,
                "seq": self.seq, "time_ns": self.time_ns,
                "state": self.state}
        return canonical_json({"body": body,
                               "sha256": _checksum(body)}) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        """Parse and *verify* one checkpoint document.

        Raises :class:`CheckpointError` on malformed JSON, a format
        version this code does not understand, or a checksum mismatch
        (torn write, bit rot)."""
        try:
            raw = json.loads(text)
            body = raw["body"]
            recorded = str(raw["sha256"])
        except (ValueError, TypeError, KeyError) as exc:
            raise CheckpointError("malformed checkpoint: {}".format(exc))
        if body.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError("unsupported checkpoint format {!r}"
                                  .format(body.get("format")))
        if _checksum(body) != recorded:
            raise CheckpointError("checksum mismatch")
        return cls(node=int(body["node"]), seq=int(body["seq"]),
                   time_ns=float(body["time_ns"]),
                   state=dict(body["state"]))


class CheckpointStore:
    """Bounded, crash-safe history of checkpoints for one node.

    ``path`` is a directory; files are named ``checkpoint-<n>.json``
    with a monotonically increasing index so "latest" is well defined
    without trusting timestamps.  ``path=None`` keeps checkpoints in
    memory (campaign drills, tests) with identical semantics.  Each
    write lands via temp file + fsync + ``os.replace`` + directory
    fsync; history is pruned to ``keep`` files, never touching the
    newest.
    """

    def __init__(self, path: Optional[object] = None, keep: int = 4):
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.path = Path(path) if path is not None else None
        self.keep = keep
        self._memory: Dict[str, str] = {}
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)

    # -- naming -------------------------------------------------------------------

    def _names(self) -> List[str]:
        """Checkpoint file names, oldest first."""
        if self.path is None:
            names = list(self._memory)
        else:
            names = [p.name for p in self.path.iterdir()
                     if _NAME_RE.match(p.name)]
        return sorted(names)

    def _next_name(self) -> str:
        names = self._names()
        index = 0
        if names:
            index = int(_NAME_RE.match(names[-1]).group(1)) + 1
        return "checkpoint-{:08d}.json".format(index)

    def _read(self, name: str) -> str:
        if self.path is None:
            return self._memory[name]
        return (self.path / name).read_text()

    # -- write / prune ------------------------------------------------------------

    def write(self, checkpoint: Checkpoint) -> str:
        """Durably persist one checkpoint; returns its file name."""
        name = self._next_name()
        text = checkpoint.to_json()
        if self.path is None:
            self._memory[name] = text
        else:
            tmp = self.path / (name + ".tmp")
            with open(tmp, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path / name)
            fsync_dir(self.path)
        self._prune()
        return name

    def _prune(self) -> None:
        names = self._names()
        for name in names[:-self.keep]:
            if self.path is None:
                del self._memory[name]
            else:
                try:
                    (self.path / name).unlink()
                except OSError:
                    pass

    # -- load ---------------------------------------------------------------------

    def load_latest(self) -> Tuple[Optional[Checkpoint], int]:
        """The newest checkpoint that verifies, plus the number of
        newer checkpoints skipped as corrupt (the *fallback* count).
        ``(None, n)`` when no stored checkpoint verifies at all."""
        fallbacks = 0
        for name in reversed(self._names()):
            try:
                return Checkpoint.from_json(self._read(name)), fallbacks
            except (CheckpointError, OSError):
                fallbacks += 1
        return None, fallbacks

    def __len__(self) -> int:
        return len(self._names())

    def entries(self) -> List[Tuple[str, Optional[Checkpoint], str]]:
        """Inventory for ``repro recover status``: each stored file as
        ``(name, checkpoint-or-None, "ok"|error-reason)``."""
        out = []
        for name in self._names():
            try:
                out.append((name, Checkpoint.from_json(self._read(name)),
                            "ok"))
            except (CheckpointError, OSError) as exc:
                out.append((name, None, str(exc)))
        return out

    # -- drill helpers -------------------------------------------------------------

    def corrupt_latest(self, drop_bytes: int = 9) -> Optional[str]:
        """Truncate the newest checkpoint in place — the torn-write
        model for the campaign's mid-checkpoint kill point.  Returns
        the damaged file's name (None when the store is empty)."""
        names = self._names()
        if not names:
            return None
        name = names[-1]
        text = self._read(name)
        damaged = text[:max(0, len(text) - drop_bytes)]
        if self.path is None:
            self._memory[name] = damaged
        else:
            (self.path / name).write_text(damaged)
        return name
