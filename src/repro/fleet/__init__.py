"""Fleet margin registry + parallel profiling + placement service.

The paper's system-level results (Section III-D2) presuppose that
every node's frequency margin is known and kept current.  This package
is that bookkeeping layer: :class:`MarginRegistry` (append-only event
log + compacted snapshots, the single source of truth for effective
margins), :class:`FleetProfiler` (deterministic parallel profiling
into the registry), :class:`PlacementService` (batched margin-aware
placement queries with a TTL'd cache), and :class:`FleetIngest`
(degradation-ladder events flow through the registry instead of
mutating cluster nodes directly).  See DESIGN.md §8.
"""

from .ingest import FleetIngest
from .placement import Assignment, PlacementService
from .profiler import (FleetConfig, FleetProfileSummary, FleetProfiler,
                       node_seed)
from .registry import (EVENT_KINDS, MarginRegistry, NodeRecord,
                       RegistryError, RegistryEvent, canonical_json)

__all__ = [
    "Assignment", "EVENT_KINDS", "FleetConfig", "FleetIngest",
    "FleetProfileSummary", "FleetProfiler", "MarginRegistry",
    "NodeRecord", "PlacementService", "RegistryError", "RegistryEvent",
    "canonical_json", "node_seed",
]
