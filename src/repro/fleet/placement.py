"""Batched placement queries over the fleet margin registry.

:class:`PlacementService` is the query side of the fleet subsystem:
the scheduler asks ``place(jobs)`` and gets node assignments computed
by the paper's margin-aware policy over the registry's *effective*
margins (profiled margin capped by demotions, zero for retired nodes).
A TTL'd cache keeps the derived cluster view hot between queries and is
invalidated the moment any registry event lands (sequence-number
check), so a demotion ingested between two queries changes the second
answer — the acceptance test for this PR.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..core.margin_selection import bucket_node_margin
from ..hpc.cluster import ClusterNode
from ..hpc.scheduler import (AllocationPolicy,
                             MarginAwareAllocationPolicy)
from .registry import MarginRegistry

#: A placement request: a Job-like object, ``(job_id, node_count)``,
#: or a bare node count (the job id is then its batch position).
PlacementRequest = Union[object, Tuple[int, int], int]


@dataclass(frozen=True)
class Assignment:
    """One placed job: which nodes, and the margin class it runs in
    (the bucket of the slowest allocated node, which is what the
    performance model keys on)."""
    job_id: int
    nodes: Tuple[int, ...]
    margin_bucket: int


def _request_key(job: PlacementRequest, position: int) -> Tuple[int, int]:
    """Normalize a request to ``(job_id, node_count)``."""
    if hasattr(job, "nodes_requested"):
        return int(getattr(job, "job_id", position)), \
            int(job.nodes_requested)
    if isinstance(job, tuple):
        return int(job[0]), int(job[1])
    return position, int(job)


class PlacementService:
    """Answer placement queries from registry state (see module doc).

    ``cache_ttl_s`` bounds how long a derived margin-bucket view may
    serve queries without re-deriving; any registry mutation (detected
    via ``last_seq``) invalidates it immediately regardless of age.

    Cache age is measured on an injectable **monotonic** clock (the
    ``NodeMarginProfiler`` pattern): the default source is
    ``time.monotonic``, never the wall clock, and explicitly passed
    ``now_s`` values are clamped to the high-water mark — so an NTP
    step backwards can neither make the view look younger than it is
    nor wedge freshness arithmetic on a negative age.
    """

    def __init__(self, registry: MarginRegistry,
                 policy: Optional[AllocationPolicy] = None,
                 cache_ttl_s: float = 300.0,
                 clock: Optional[Callable[[], float]] = None):
        if cache_ttl_s <= 0:
            raise ValueError("cache_ttl_s must be positive")
        self.registry = registry
        self.policy = policy or MarginAwareAllocationPolicy()
        self.cache_ttl_s = cache_ttl_s
        self.cache_hits = 0
        self.cache_misses = 0
        self._clock = clock if clock is not None else _time.monotonic
        self._seen_s = float("-inf")
        self._cached_at_s = 0.0
        self._cached_seq = -1
        self._cached_nodes: List[ClusterNode] = []

    def _now(self, now_s: Optional[float]) -> float:
        """Resolve the query time: explicit ``now_s`` (simulation
        clock) or the injectable monotonic clock, clamped to the
        high-water mark so time never runs backwards for the cache."""
        now = self._clock() if now_s is None else float(now_s)
        if now < self._seen_s:
            now = self._seen_s
        self._seen_s = now
        return now

    def cluster_view(self, now_s: Optional[float] = None
                     ) -> List[ClusterNode]:
        """Read-only :class:`ClusterNode` view of the fleet's effective
        margins (cached; see class docstring for invalidation)."""
        now = self._now(now_s)
        fresh = (self._cached_seq == self.registry.last_seq and
                 now - self._cached_at_s < self.cache_ttl_s)
        if fresh:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
            self._cached_nodes = [
                ClusterNode(rec.node, rec.effective_margin_mts)
                for rec in self.registry.nodes()]
            self._cached_seq = self.registry.last_seq
            self._cached_at_s = now
        return list(self._cached_nodes)

    def bucket_counts(self, now_s: Optional[float] = None) -> dict:
        """Free-node count per margin bucket in the current view."""
        counts: dict = {}
        for node in self.cluster_view(now_s):
            bucket = bucket_node_margin(node.effective_margin_mts)
            counts[bucket] = counts.get(bucket, 0) + 1
        return dict(sorted(counts.items(), reverse=True))

    def place(self, jobs: Sequence[PlacementRequest],
              now_s: Optional[float] = None
              ) -> List[Optional[Assignment]]:
        """Assign nodes to a batch of jobs, in order.

        Each job takes its nodes out of the free pool for the rest of
        the batch; a job the policy cannot satisfy yields ``None`` (it
        would wait in queue) without blocking later, smaller jobs.
        """
        free = self.cluster_view(now_s)
        out: List[Optional[Assignment]] = []
        for position, job in enumerate(jobs):
            job_id, count = _request_key(job, position)
            if count <= 0:
                raise ValueError("jobs need at least one node")
            chosen = self.policy.select(free, count)
            if chosen is None:
                out.append(None)
                continue
            taken = set(id(n) for n in chosen)
            free = [n for n in free if id(n) not in taken]
            bucket = bucket_node_margin(
                min(n.effective_margin_mts for n in chosen))
            out.append(Assignment(job_id,
                                  tuple(n.index for n in chosen),
                                  bucket))
        return out
