"""Ingestion hooks: degradation events flow *through* the registry.

Before this subsystem, a :class:`~repro.resilience.degradation
.DegradationController` mutated cluster nodes directly
(``Cluster.demote_node``) and the knowledge evaporated with the
process.  :class:`FleetIngest` inverts that: the controller's
``on_rung_change`` hook records a demote/promote/retire event in the
:class:`~repro.fleet.registry.MarginRegistry` first, and cluster state
is derived from the registry — so placement, reporting, and the next
boot all see the same history.
"""

from __future__ import annotations

from typing import Optional

from ..hpc.cluster import Cluster
from .registry import MarginRegistry


class FleetIngest:
    """Bridge from per-node controllers to the fleet registry.

    ``now_s`` is advanced by the caller (simulation clock); events are
    stamped with it so registry contents stay deterministic.  When a
    ``cluster`` is attached, every ingested event is also folded into
    the matching :class:`~repro.hpc.cluster.ClusterNode` so in-flight
    scheduling sees it immediately.
    """

    def __init__(self, registry: MarginRegistry,
                 cluster: Optional[Cluster] = None):
        self.registry = registry
        self.cluster = cluster
        self.now_s = 0.0

    def rung_hook(self, node_index: int, controller=None):
        """An ``on_rung_change`` callable for one node's controller.

        Pass the :class:`DegradationController` itself (once built) via
        ``controller`` — or assign ``hook.controller`` later — so the
        hook can distinguish a retirement from an ordinary demotion to
        specification.
        """
        ingest = self

        class _Hook:
            """Callable hook carrying a late-bound controller ref."""

            def __init__(self):
                self.controller = controller

            def __call__(self, rung):
                ingest.ingest_rung(node_index, rung, self.controller)

        return _Hook()

    def ingest_rung(self, node_index: int, rung,
                    controller=None) -> None:
        """Record one rung change as a registry event and (optionally)
        fold it into the attached cluster.

        A change to the node's current effective margin is recorded as
        ``demote`` or ``promote`` by direction; a rung change while the
        controller reports ``retired`` records a ``retire`` instead.
        Controllers that declare ``adaptive = True`` (the
        :class:`repro.adaptive.AdaptiveMarginController` family) record
        ``adapt`` events instead of demote/promote — the margin
        semantics are identical but the fleet can tell control-law
        decisions from reactive ladder moves.  The initial hook call at
        controller construction (rung margin equal to the node's
        effective margin) is a no-op.
        """
        rec = (self.registry.node(node_index)
               if self.registry.has_node(node_index) else None)
        retired = bool(getattr(controller, "retired", False))
        if retired:
            if rec is None or not rec.retired:
                self.registry.record_retirement(
                    node_index, time_s=self.now_s, reason=rung.name)
        else:
            previous = (rec.effective_margin_mts if rec is not None
                        else None)
            margin = int(rung.margin_mts)
            if previous is not None and margin == previous:
                return                        # no effective change
            down = previous is None or margin < previous
            if getattr(controller, "adaptive", False):
                self.registry.record_adapt(
                    node_index, margin, time_s=self.now_s,
                    direction="demote" if down else "promote",
                    reason=rung.name)
            elif down:
                self.registry.record_demotion(
                    node_index, margin, time_s=self.now_s,
                    reason=rung.name)
            else:
                self.registry.record_promotion(
                    node_index, margin, time_s=self.now_s,
                    reason=rung.name)
        if self.cluster is not None:
            self._apply_node(self.cluster, node_index)

    def _apply_node(self, cluster: Cluster, node_index: int) -> None:
        if not (0 <= node_index < len(cluster)):
            return
        rec = self.registry.node(node_index)
        if rec.retired:
            cluster.demote_node(node_index, 0)
        elif rec.demoted_margin_mts is not None:
            cluster.demote_node(node_index, rec.demoted_margin_mts)
        else:
            cluster.restore_node(node_index)

    def apply_to_cluster(self, cluster: Optional[Cluster] = None
                         ) -> None:
        """Fold the whole registry into a cluster's operational state
        (e.g. after loading a registry from disk at boot)."""
        cluster = cluster if cluster is not None else self.cluster
        if cluster is None:
            raise ValueError("no cluster attached or given")
        for rec in self.registry.nodes():
            self._apply_node(cluster, rec.node)
