"""Fleet margin registry: the persistent source of truth for margins.

Exploiting frequency margin safely at fleet scale is a bookkeeping
problem (AL-DRAM made the same observation for timing margins): someone
must profile every node, remember the results, and keep them current as
modules age, heat up, and get demoted.  :class:`MarginRegistry` is that
memory — an append-only JSONL event log plus a periodically compacted
snapshot, replayable into per-node :class:`NodeRecord` state that the
scheduler, simulator, and resilience ladder all consume instead of
ad-hoc margin lists.

Event kinds (the full schema is documented in DESIGN.md §8):

``profile``
    A completed :class:`~repro.core.profiling.NodeMarginProfiler` pass;
    payload carries the node margin, per-channel margins, and attempt
    count.  A fresh profile clears any operational demotion.
``demote`` / ``promote``
    Degradation-ladder rung changes (operational caps below the
    profiled margin); a promotion back to the profiled margin clears
    the cap.
``retire``
    The node is permanently out of margin exploitation (out of healthy
    modules); its effective margin is 0 from then on, regardless of
    later events.
``thermal``
    An advisory (e.g. a profiling pass aborted by boot failures during
    a thermal excursion); it does not change the effective margin but
    is counted per node.
``drift``
    An environment observation from a drift scenario (ambient and
    on-DIMM temperature band changes seen by
    :mod:`repro.adaptive`); like ``thermal`` it changes no margin,
    but it is counted separately so adaptive runs can report how much
    environment churn the controller was exposed to.
``adapt``
    A rung change decided by the adaptive controller
    (:class:`repro.adaptive.AdaptiveMarginController`) rather than the
    reactive ladder — proactive demotion ahead of faults or a
    probe-budgeted re-promotion.  The payload mirrors
    ``demote``/``promote`` (``margin_mts`` + a rung-name ``reason``)
    and the margin semantics are identical, so recovery replay and
    cluster folding treat it exactly like a ladder rung change.

Durability contract: events are appended one canonical-JSON line at a
time; snapshots are written atomically (temp file + ``os.replace``) so
a crash can at worst lose the tail of the event log, never corrupt a
snapshot.  A partially-written *final* event line is tolerated and
dropped at load time; corruption anywhere else raises
:class:`RegistryError`.  Canonical serialization (sorted keys, fixed
separators) makes snapshots byte-comparable: the same fleet seed
produces byte-identical snapshot files, which CI asserts.

Concurrency contract — **single writer per registry (per shard)**:
appends are unlocked, so exactly one process may ``record`` into a
given registry directory at a time (the sharded service holds one
writer per shard; see ``repro.service``).  Concurrent *readers* are
always safe: an append is a single sequential write, so a reader can
at worst observe a clean prefix of the log plus one torn final line —
exactly the shape the load path already tolerates — and never a
sequence gap, because seqs are assigned and written in order by the
one writer.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.margin_selection import bucket_node_margin
from ..obs import get_recorder

#: Allowed event kinds, in documentation order.
EVENT_KINDS = ("profile", "demote", "promote", "retire", "thermal",
               "drift", "adapt")

#: Snapshot schema version (bumped on incompatible changes).
SNAPSHOT_FORMAT = 1

EVENTS_FILE = "events.jsonl"
SNAPSHOT_FILE = "snapshot.json"


class RegistryError(Exception):
    """The registry is missing, corrupt, or was used incorrectly."""


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def fsync_dir(path: Path) -> None:
    """fsync a directory so a just-completed ``os.replace`` inside it
    survives power loss — fsyncing the file alone persists the *data*,
    but the rename itself lives in the directory entry.  Platforms
    whose directories cannot be opened or fsynced (some network
    filesystems, Windows) degrade to a no-op."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class RegistryEvent:
    """One append-only log entry (see module docstring for kinds)."""
    seq: int
    time_s: float
    node: int
    kind: str
    payload: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """One canonical JSONL line."""
        return canonical_json({"seq": self.seq, "time_s": self.time_s,
                               "node": self.node, "kind": self.kind,
                               "payload": self.payload})

    @classmethod
    def from_json(cls, line: str) -> "RegistryEvent":
        """Parse one log line (raises ``ValueError`` on bad JSON)."""
        raw = json.loads(line)
        return cls(seq=int(raw["seq"]), time_s=float(raw["time_s"]),
                   node=int(raw["node"]), kind=str(raw["kind"]),
                   payload=dict(raw.get("payload", {})))


@dataclass
class NodeRecord:
    """Replayed per-node state: what the fleet knows about one node."""
    node: int
    margin_mts: Optional[int] = None       # last profiled margin
    channel_margins: Tuple[int, ...] = ()
    profiled_at_s: Optional[float] = None
    demoted_margin_mts: Optional[int] = None
    retired: bool = False
    advisories: int = 0
    drift_advisories: int = 0
    last_seq: int = 0

    @property
    def effective_margin_mts(self) -> int:
        """The margin placement may rely on right now: 0 for retired or
        never-profiled nodes, else the profiled margin capped by any
        operational demotion."""
        if self.retired or self.margin_mts is None:
            return 0
        if self.demoted_margin_mts is None:
            return self.margin_mts
        return min(self.margin_mts, self.demoted_margin_mts)

    @property
    def margin_bucket(self) -> int:
        return bucket_node_margin(self.effective_margin_mts)

    def to_dict(self) -> Dict[str, object]:
        """Snapshot representation (canonical-JSON friendly)."""
        return {"node": self.node, "margin_mts": self.margin_mts,
                "channel_margins": list(self.channel_margins),
                "profiled_at_s": self.profiled_at_s,
                "demoted_margin_mts": self.demoted_margin_mts,
                "retired": self.retired, "advisories": self.advisories,
                "drift_advisories": self.drift_advisories,
                "last_seq": self.last_seq}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "NodeRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(node=int(raw["node"]),
                   margin_mts=raw["margin_mts"],
                   channel_margins=tuple(raw.get("channel_margins", ())),
                   profiled_at_s=raw["profiled_at_s"],
                   demoted_margin_mts=raw["demoted_margin_mts"],
                   retired=bool(raw["retired"]),
                   advisories=int(raw.get("advisories", 0)),
                   drift_advisories=int(raw.get("drift_advisories", 0)),
                   last_seq=int(raw.get("last_seq", 0)))


class MarginRegistry:
    """Append-only event log + snapshot of fleet margin knowledge.

    ``path`` is a directory holding ``events.jsonl`` and
    ``snapshot.json``; ``None`` keeps the registry in memory only
    (tests, examples).  With ``create=False`` the directory must
    already contain a registry (the CLI's read-only subcommands use
    this so a typo'd path errors instead of silently creating an empty
    fleet).
    """

    def __init__(self, path: Optional[object] = None,
                 create: bool = True):
        self.path = Path(path) if path is not None else None
        self.last_seq = 0
        self._records: Dict[int, NodeRecord] = {}
        #: Events seen by this process (loaded from the log or recorded
        #: here), for WAL replay by ``repro.recovery``.  Events already
        #: folded into a loaded snapshot are unavailable; the horizon
        #: marks the first seq retained.
        self._retained: List[RegistryEvent] = []
        self.horizon_seq = 0
        if self.path is not None:
            if create:
                self.path.mkdir(parents=True, exist_ok=True)
            elif not (self.snapshot_path.is_file() or
                      self.events_path.is_file()):
                raise RegistryError(
                    "no registry at {}".format(self.path))
            self._load()

    # -- paths --------------------------------------------------------------------

    @property
    def events_path(self) -> Path:
        """The append-only JSONL event log."""
        return self.path / EVENTS_FILE

    @property
    def snapshot_path(self) -> Path:
        """The atomically-replaced snapshot file."""
        return self.path / SNAPSHOT_FILE

    # -- load / replay ------------------------------------------------------------

    def _load(self) -> None:
        if self.snapshot_path.is_file():
            try:
                raw = json.loads(self.snapshot_path.read_text())
            except ValueError as exc:
                raise RegistryError("corrupt snapshot {}: {}".format(
                    self.snapshot_path, exc))
            if raw.get("format") != SNAPSHOT_FORMAT:
                raise RegistryError("unsupported snapshot format {!r}"
                                    .format(raw.get("format")))
            self.last_seq = int(raw["last_seq"])
            self.horizon_seq = self.last_seq
            self._records = {int(r["node"]): NodeRecord.from_dict(r)
                             for r in raw["nodes"]}
        if not self.events_path.is_file():
            return
        lines = self.events_path.read_text().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                event = RegistryEvent.from_json(line)
            except (ValueError, KeyError) as exc:
                if i == len(lines) - 1:
                    # A crash mid-append can truncate the final line;
                    # everything before it is intact.
                    break
                raise RegistryError(
                    "corrupt event at line {}: {}".format(i + 1, exc))
            if event.seq <= self.last_seq:
                continue          # already folded into the snapshot
            if event.seq != self.last_seq + 1:
                raise RegistryError(
                    "sequence gap: expected {}, got {}".format(
                        self.last_seq + 1, event.seq))
            self._apply(event)
            self._retained.append(event)
            self.last_seq = event.seq

    def repair_log(self) -> int:
        """Drop a truncated tail line a crash mid-append can leave in
        ``events.jsonl``, rewriting the log atomically.  The load path
        already tolerates (and skips) such a line; appending after it
        would corrupt the log, so any resume *must* repair first.
        Returns the number of bytes dropped (0 when already clean)."""
        if self.path is None or not self.events_path.is_file():
            return 0
        original = self.events_path.read_text()
        lines = original.splitlines()
        valid: List[str] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                RegistryEvent.from_json(line)
            except (ValueError, KeyError):
                if i == len(lines) - 1:
                    break
                raise RegistryError(
                    "corrupt event at line {}".format(i + 1))
            valid.append(line)
        repaired = "".join(line + "\n" for line in valid)
        if repaired == original:
            return 0
        tmp = self.events_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w") as fh:
            fh.write(repaired)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.events_path)
        fsync_dir(self.path)
        return len(original) - len(repaired)

    # -- recording ----------------------------------------------------------------

    def record(self, kind: str, node: int, time_s: float = 0.0,
               **payload: object) -> RegistryEvent:
        """Append one event, apply it to the replayed state, and
        persist it (when the registry is file-backed)."""
        if kind not in EVENT_KINDS:
            raise ValueError("unknown event kind {!r}".format(kind))
        if node < 0:
            raise ValueError("node index must be non-negative")
        event = RegistryEvent(seq=self.last_seq + 1,
                              time_s=float(time_s), node=int(node),
                              kind=kind, payload=dict(payload))
        self._apply(event)
        self._retained.append(event)
        self.last_seq = event.seq
        if self.path is not None:
            with open(self.events_path, "a") as fh:
                fh.write(event.to_json() + "\n")
                fh.flush()
        rec = get_recorder()
        if rec.enabled:
            rec.counter("registry", "events", kind=kind)
            rec.gauge("registry", "last_seq", self.last_seq)
        return event

    def record_profile(self, node: int, margin_mts: int,
                       time_s: float = 0.0,
                       channel_margins: Sequence[int] = (),
                       attempts: int = 1) -> RegistryEvent:
        """A completed profiling pass (clears operational demotions)."""
        return self.record("profile", node, time_s,
                           margin_mts=int(margin_mts),
                           channel_margins=[int(m) for m in
                                            channel_margins],
                           attempts=int(attempts))

    def record_demotion(self, node: int, margin_mts: int,
                        time_s: float = 0.0,
                        reason: str = "") -> RegistryEvent:
        """A degradation-ladder demotion to an operational cap."""
        return self.record("demote", node, time_s,
                           margin_mts=int(margin_mts), reason=reason)

    def record_promotion(self, node: int, margin_mts: int,
                         time_s: float = 0.0,
                         reason: str = "") -> RegistryEvent:
        """A re-promotion rung change (cap raised or cleared)."""
        return self.record("promote", node, time_s,
                           margin_mts=int(margin_mts), reason=reason)

    def record_retirement(self, node: int, time_s: float = 0.0,
                          reason: str = "") -> RegistryEvent:
        """Permanent retirement from margin exploitation."""
        return self.record("retire", node, time_s, reason=reason)

    def record_advisory(self, node: int, time_s: float = 0.0,
                        reason: str = "") -> RegistryEvent:
        """A thermal/profiling advisory (no margin change)."""
        return self.record("thermal", node, time_s, reason=reason)

    def record_drift(self, node: int, time_s: float = 0.0,
                     ambient_c: float = 0.0, dimm_c: float = 0.0,
                     reason: str = "") -> RegistryEvent:
        """A drift-scenario environment observation (no margin change).
        Payload carries only *observable* state — ambient and on-DIMM
        temperatures — never the scenario's hidden true margin."""
        return self.record("drift", node, time_s,
                           ambient_c=float(ambient_c),
                           dimm_c=float(dimm_c), reason=reason)

    def record_adapt(self, node: int, margin_mts: int,
                     time_s: float = 0.0, direction: str = "",
                     reason: str = "") -> RegistryEvent:
        """An adaptive-controller rung change; margin semantics match
        ``demote``/``promote`` so replay stays conservative."""
        return self.record("adapt", node, time_s,
                           margin_mts=int(margin_mts),
                           direction=direction, reason=reason)

    def _apply(self, event: RegistryEvent) -> None:
        rec = self._records.setdefault(event.node,
                                       NodeRecord(event.node))
        payload = event.payload
        if event.kind == "profile":
            rec.margin_mts = int(payload["margin_mts"])
            rec.channel_margins = tuple(
                int(m) for m in payload.get("channel_margins", ()))
            rec.profiled_at_s = event.time_s
            rec.demoted_margin_mts = None
        elif event.kind in ("demote", "promote", "adapt"):
            margin = int(payload["margin_mts"])
            base = rec.margin_mts if rec.margin_mts is not None else 0
            rec.demoted_margin_mts = None if margin >= base else margin
        elif event.kind == "retire":
            rec.retired = True
        elif event.kind == "thermal":
            rec.advisories += 1
        elif event.kind == "drift":
            rec.drift_advisories += 1
        rec.last_seq = event.seq

    # -- queries ------------------------------------------------------------------

    def node(self, index: int) -> NodeRecord:
        """The replayed record for one node (KeyError if unknown)."""
        return self._records[index]

    def has_node(self, index: int) -> bool:
        """Has any event ever mentioned this node?"""
        return index in self._records

    def nodes(self) -> List[NodeRecord]:
        """All node records, ordered by node index."""
        return [self._records[i] for i in sorted(self._records)]

    def events_since(self, seq: int,
                     node: Optional[int] = None
                     ) -> Tuple[List["RegistryEvent"], bool]:
        """Retained events with ``seq`` strictly greater than ``seq``,
        optionally filtered to one node, in seq order.

        The second element reports whether the range is *complete*:
        ``False`` when ``seq`` predates the retention horizon (events
        folded into a snapshot before this process loaded), in which
        case the caller must fall back to the replayed
        :class:`NodeRecord` net state instead of an event-by-event
        replay."""
        complete = seq >= self.horizon_seq
        events = [e for e in self._retained if e.seq > seq and
                  (node is None or e.node == node)]
        return events, complete

    def effective_margins(self) -> List[int]:
        """Effective margins ordered by node index (placement input)."""
        return [rec.effective_margin_mts for rec in self.nodes()]

    def bucket_counts(self) -> Dict[int, int]:
        """Node count per effective-margin bucket, fastest first."""
        counts: Dict[int, int] = {}
        for rec in self.nodes():
            counts[rec.margin_bucket] = counts.get(rec.margin_bucket,
                                                   0) + 1
        return dict(sorted(counts.items(), reverse=True))

    def __len__(self) -> int:
        return len(self._records)

    # -- snapshot / compaction ----------------------------------------------------

    def snapshot_bytes(self) -> bytes:
        """Canonical snapshot serialization (byte-comparable)."""
        doc = {"format": SNAPSHOT_FORMAT, "last_seq": self.last_seq,
               "nodes": [rec.to_dict() for rec in self.nodes()]}
        return (canonical_json(doc) + "\n").encode("ascii")

    def write_snapshot(self) -> Path:
        """Atomically persist the snapshot: write a temp file in the
        registry directory, fsync, then ``os.replace`` over the old
        snapshot, then fsync the directory so the rename itself is
        durable — readers never observe a torn file and a power cut
        right after the replace cannot resurrect the old snapshot."""
        if self.path is None:
            raise RegistryError("in-memory registry has no snapshot "
                                "file; use snapshot_bytes()")
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        with open(tmp, "wb") as fh:
            fh.write(self.snapshot_bytes())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        fsync_dir(self.path)
        return self.snapshot_path

    def compact(self) -> int:
        """Fold the event log into the snapshot and truncate it.

        Returns the number of log lines dropped.  Compaction is itself
        crash-safe: the snapshot lands atomically first, and a crash
        before the log truncation only leaves events the next load
        recognizes as already folded (``seq <= snapshot.last_seq``).
        """
        self.write_snapshot()
        return self.truncate_log()

    def truncate_log(self) -> int:
        """Empty the on-disk event log and drop the in-memory retained
        events it covered, advancing the retention horizon.

        Only valid immediately after :meth:`write_snapshot` (the
        snapshot must already hold every event's net effect) —
        :meth:`compact` is the safe pairing; the sharded service calls
        the two halves separately so crash drills can land between
        them.  Dropping the retained list is what keeps a long-running
        daemon's memory bounded: without it every compacted event would
        stay resident forever.  ``events_since`` callers asking for a
        seq older than the new horizon get ``complete=False`` and fall
        back to net state, exactly as after a snapshot load."""
        dropped = 0
        if self.path is not None and self.events_path.is_file():
            dropped = sum(
                1 for line in self.events_path.read_text().splitlines()
                if line.strip())
            tmp = self.events_path.with_suffix(".jsonl.tmp")
            tmp.write_text("")
            os.replace(tmp, self.events_path)
            fsync_dir(self.path)
        self._retained = []
        self.horizon_seq = self.last_seq
        return dropped
