"""Parallel fleet profiling: fan :class:`NodeMarginProfiler` out.

Profiling a node takes a stress-test pass per 200 MT/s step per module
(Section II-A) — serially that is the bottleneck of bringing a fleet
under margin management.  :class:`FleetProfiler` runs one bounded-retry
profiling pass per node across a ``ProcessPoolExecutor`` and ingests
the results into a :class:`~repro.fleet.registry.MarginRegistry`.

Determinism contract: every node's hardware draw, rig seed, and flaky
behaviour derive from ``(fleet_seed, node_index)`` through
:func:`node_seed` (no ``hash()``, no wall clock), and results are
ingested in node order regardless of worker completion order — so the
same fleet seed produces a byte-identical registry snapshot whether
profiling ran serially or on any number of workers.  CI profiles a
64-node fleet twice and ``cmp``s the snapshots.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.reporting import format_kv
from ..characterization.modules import ModulePopulation
from ..characterization.testbench import TestMachine
from ..core.profiling import NodeMarginProfiler
from .registry import MarginRegistry

#: Primes decorrelating per-node seeds from the fleet seed.
_SEED_MULT = 1_000_003
_SEED_STRIDE = 7919


def node_seed(fleet_seed: int, node_index: int) -> int:
    """Deterministic per-node seed (stable across processes/platforms,
    unlike ``hash()`` which is salted per interpreter)."""
    return (fleet_seed * _SEED_MULT + node_index * _SEED_STRIDE
            + 17) % (2 ** 31 - 1)


@dataclass(frozen=True)
class FleetConfig:
    """One fleet-profiling campaign.

    ``workers <= 1`` profiles serially; larger values fan out over a
    process pool (falling back to serial where the platform cannot
    spawn workers — the results are identical either way, see the
    module docstring).  ``flaky_node_rate`` makes that fraction of
    nodes' rigs raise boot failures for their first
    ``flaky_fail_calls`` measurements, exercising the bounded-retry
    path at fleet scale.
    """
    nodes: int = 64
    channels_per_node: int = 2
    modules_per_channel: int = 2
    seed: int = 2021
    guard_band_mts: int = 0
    max_retries: int = 2
    backoff_s: float = 60.0
    flaky_node_rate: float = 0.0
    flaky_fail_calls: int = 12
    workers: int = 0

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.channels_per_node <= 0 or self.modules_per_channel <= 0:
            raise ValueError("node geometry must be positive")
        if not 0.0 <= self.flaky_node_rate <= 1.0:
            raise ValueError("flaky_node_rate must be in [0, 1]")


def _profile_node(task: Tuple) -> Dict[str, object]:
    """Worker body: profile one node (top-level so it pickles).

    Builds the node's module complement by sampling the characterized
    population with the node's own RNG, then runs one bounded-retry
    profiling pass on a rig seeded the same way.
    """
    (fleet_seed, index, channels_per_node, modules_per_channel,
     guard_band, max_retries, backoff_s, flaky_rate, flaky_calls) = task
    seed = node_seed(fleet_seed, index)
    rng = random.Random(seed)
    population = ModulePopulation(seed=fleet_seed)
    need = channels_per_node * modules_per_channel
    picked = rng.sample(population.major_brands(), need)
    channels = [picked[c * modules_per_channel:
                       (c + 1) * modules_per_channel]
                for c in range(channels_per_node)]
    if rng.random() < flaky_rate:
        from ..resilience.campaign import FlakyTestMachine
        machine: TestMachine = FlakyTestMachine(fail_calls=flaky_calls,
                                                seed=seed)
    else:
        machine = TestMachine(seed=seed)
    profiler = NodeMarginProfiler(machine, guard_band_mts=guard_band)
    outcome = profiler.profile_with_retry(
        channels, now_s=0.0, max_retries=max_retries,
        backoff_s=backoff_s)
    result: Dict[str, object] = {"node": index,
                                 "ok": outcome.succeeded,
                                 "attempts": outcome.attempts,
                                 "elapsed_s": outcome.elapsed_s}
    if outcome.succeeded:
        result["margin_mts"] = outcome.profile.node_margin_mts
        result["channel_margins"] = list(outcome.profile.channel_margins)
    return result


@dataclass
class FleetProfileSummary:
    """Progress/failure accounting for one profiling campaign."""
    nodes: int
    profiled: int
    failed: int
    attempts: int
    profiling_s: float                 # summed per-node stress time
    bucket_counts: Dict[int, int] = field(default_factory=dict)
    failed_nodes: Tuple[int, ...] = ()
    workers_used: int = 1

    @property
    def succeeded(self) -> bool:
        """Did at least one node come under margin management?"""
        return self.profiled > 0

    def render(self) -> str:
        """Deterministic plain-text summary (CLI + CI artifact)."""
        pairs = [["nodes", self.nodes],
                 ["profiled", self.profiled],
                 ["failed", self.failed],
                 ["attempts", self.attempts],
                 ["profiling node-seconds", self.profiling_s],
                 ["workers", self.workers_used]]
        for bucket, count in sorted(self.bucket_counts.items(),
                                    reverse=True):
            pairs.append(["nodes at {} MT/s".format(bucket), count])
        if self.failed_nodes:
            pairs.append(["failed nodes",
                          ",".join(str(n) for n in self.failed_nodes)])
        return format_kv("fleet profiling summary", pairs) + "\n"


class FleetProfiler:
    """Profile a whole fleet into a registry (see module docstring)."""

    def __init__(self, config: FleetConfig, registry: MarginRegistry):
        self.config = config
        self.registry = registry

    def _tasks(self) -> List[Tuple]:
        cfg = self.config
        return [(cfg.seed, i, cfg.channels_per_node,
                 cfg.modules_per_channel, cfg.guard_band_mts,
                 cfg.max_retries, cfg.backoff_s, cfg.flaky_node_rate,
                 cfg.flaky_fail_calls) for i in range(cfg.nodes)]

    def _execute(self, tasks: List[Tuple],
                 progress: Optional[Callable[[int, int], None]]
                 ) -> Tuple[List[Dict[str, object]], int]:
        """Run the workers; returns (results, workers actually used)."""
        workers = self.config.workers
        if workers > 1:
            try:
                from concurrent.futures import ProcessPoolExecutor
                results: List[Dict[str, object]] = []
                chunk = max(1, len(tasks) // (workers * 4))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for result in pool.map(_profile_node, tasks,
                                           chunksize=chunk):
                        results.append(result)
                        if progress is not None:
                            progress(len(results), len(tasks))
                return results, workers
            except (OSError, PermissionError):
                pass        # sandboxed platform: fall back to serial
        results = []
        for task in tasks:
            results.append(_profile_node(task))
            if progress is not None:
                progress(len(results), len(tasks))
        return results, 1

    def run(self, now_s: float = 0.0,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> FleetProfileSummary:
        """Profile every node, ingest results in node order, snapshot.

        ``progress(done, total)`` is called after each node completes
        (in completion order); registry ingestion happens afterwards in
        node order, preserving the determinism contract.
        """
        results, workers_used = self._execute(self._tasks(), progress)
        results.sort(key=lambda r: r["node"])
        attempts = 0
        profiling_s = 0.0
        failed_nodes: List[int] = []
        for result in results:
            attempts += result["attempts"]
            profiling_s += result["elapsed_s"]
            if result["ok"]:
                self.registry.record_profile(
                    result["node"], result["margin_mts"], time_s=now_s,
                    channel_margins=result["channel_margins"],
                    attempts=result["attempts"])
            else:
                failed_nodes.append(result["node"])
                self.registry.record_advisory(
                    result["node"], time_s=now_s,
                    reason="profiling failed after {} attempts"
                           .format(result["attempts"]))
        if self.registry.path is not None:
            self.registry.write_snapshot()
        return FleetProfileSummary(
            nodes=len(results),
            profiled=len(results) - len(failed_nodes),
            failed=len(failed_nodes),
            attempts=attempts,
            profiling_s=profiling_s,
            bucket_counts=self.registry.bucket_counts(),
            failed_nodes=tuple(failed_nodes),
            workers_used=workers_used)
