"""Parallel fleet profiling: fan :class:`NodeMarginProfiler` out.

Profiling a node takes a stress-test pass per 200 MT/s step per module
(Section II-A) — serially that is the bottleneck of bringing a fleet
under margin management.  :class:`FleetProfiler` runs one bounded-retry
profiling pass per node across a ``ProcessPoolExecutor`` and ingests
the results into a :class:`~repro.fleet.registry.MarginRegistry`.

Determinism contract: every node's hardware draw, rig seed, and flaky
behaviour derive from ``(fleet_seed, node_index)`` through
:func:`node_seed` (no ``hash()``, no wall clock), and results are
ingested in node order regardless of worker completion order — so the
same fleet seed produces a byte-identical registry snapshot whether
profiling ran serially or on any number of workers.  CI profiles a
64-node fleet twice and ``cmp``s the snapshots.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterator, List, Optional,
                    Tuple)

from ..analysis.reporting import format_kv
from ..characterization.modules import ModulePopulation
from ..characterization.testbench import TestMachine
from ..core.profiling import NodeMarginProfiler
from ..obs import get_recorder
from .registry import MarginRegistry

#: Primes decorrelating per-node seeds from the fleet seed.
_SEED_MULT = 1_000_003
_SEED_STRIDE = 7919


def node_seed(fleet_seed: int, node_index: int) -> int:
    """Deterministic per-node seed (stable across processes/platforms,
    unlike ``hash()`` which is salted per interpreter)."""
    return (fleet_seed * _SEED_MULT + node_index * _SEED_STRIDE
            + 17) % (2 ** 31 - 1)


@dataclass(frozen=True)
class FleetConfig:
    """One fleet-profiling campaign.

    ``workers <= 1`` profiles serially; larger values fan out over a
    process pool (falling back to serial where the platform cannot
    spawn workers — the results are identical either way, see the
    module docstring).  ``flaky_node_rate`` makes that fraction of
    nodes' rigs raise boot failures for their first
    ``flaky_fail_calls`` measurements, exercising the bounded-retry
    path at fleet scale.
    """
    nodes: int = 64
    channels_per_node: int = 2
    modules_per_channel: int = 2
    seed: int = 2021
    guard_band_mts: int = 0
    max_retries: int = 2
    backoff_s: float = 60.0
    flaky_node_rate: float = 0.0
    flaky_fail_calls: int = 12
    workers: int = 0

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.channels_per_node <= 0 or self.modules_per_channel <= 0:
            raise ValueError("node geometry must be positive")
        if not 0.0 <= self.flaky_node_rate <= 1.0:
            raise ValueError("flaky_node_rate must be in [0, 1]")


def _profile_node(task: Tuple) -> Dict[str, object]:
    """Worker body: profile one node (top-level so it pickles).

    Builds the node's module complement by sampling the characterized
    population with the node's own RNG, then runs one bounded-retry
    profiling pass on a rig seeded the same way.
    """
    (fleet_seed, index, channels_per_node, modules_per_channel,
     guard_band, max_retries, backoff_s, flaky_rate, flaky_calls) = task
    seed = node_seed(fleet_seed, index)
    rng = random.Random(seed)
    population = ModulePopulation(seed=fleet_seed)
    need = channels_per_node * modules_per_channel
    picked = rng.sample(population.major_brands(), need)
    channels = [picked[c * modules_per_channel:
                       (c + 1) * modules_per_channel]
                for c in range(channels_per_node)]
    if rng.random() < flaky_rate:
        from ..resilience.campaign import FlakyTestMachine
        machine: TestMachine = FlakyTestMachine(fail_calls=flaky_calls,
                                                seed=seed)
    else:
        machine = TestMachine(seed=seed)
    profiler = NodeMarginProfiler(machine, guard_band_mts=guard_band)
    outcome = profiler.profile_with_retry(
        channels, now_s=0.0, max_retries=max_retries,
        backoff_s=backoff_s)
    result: Dict[str, object] = {"node": index,
                                 "ok": outcome.succeeded,
                                 "attempts": outcome.attempts,
                                 "elapsed_s": outcome.elapsed_s}
    if outcome.succeeded:
        result["margin_mts"] = outcome.profile.node_margin_mts
        result["channel_margins"] = list(outcome.profile.channel_margins)
    return result


@dataclass
class FleetProfileSummary:
    """Progress/failure accounting for one profiling campaign."""
    nodes: int
    profiled: int
    failed: int
    attempts: int
    profiling_s: float                 # summed per-node stress time
    bucket_counts: Dict[int, int] = field(default_factory=dict)
    failed_nodes: Tuple[int, ...] = ()
    workers_used: int = 1
    skipped: int = 0                   # resume: already in the registry

    @property
    def succeeded(self) -> bool:
        """Did at least one node come under margin management?"""
        return self.profiled > 0

    def render(self) -> str:
        """Deterministic plain-text summary (CLI + CI artifact)."""
        pairs = [["nodes", self.nodes],
                 ["profiled", self.profiled],
                 ["failed", self.failed],
                 ["attempts", self.attempts],
                 ["profiling node-seconds", self.profiling_s],
                 ["workers", self.workers_used]]
        if self.skipped:
            pairs.append(["skipped (already profiled)", self.skipped])
        for bucket, count in sorted(self.bucket_counts.items(),
                                    reverse=True):
            pairs.append(["nodes at {} MT/s".format(bucket), count])
        if self.failed_nodes:
            pairs.append(["failed nodes",
                          ",".join(str(n) for n in self.failed_nodes)])
        return format_kv("fleet profiling summary", pairs) + "\n"


class FleetProfiler:
    """Profile a whole fleet into a registry (see module docstring)."""

    def __init__(self, config: FleetConfig, registry: MarginRegistry):
        self.config = config
        self.registry = registry

    def _tasks(self, indices: List[int]) -> List[Tuple]:
        cfg = self.config
        return [(cfg.seed, i, cfg.channels_per_node,
                 cfg.modules_per_channel, cfg.guard_band_mts,
                 cfg.max_retries, cfg.backoff_s, cfg.flaky_node_rate,
                 cfg.flaky_fail_calls) for i in indices]

    def _stream(self, tasks: List[Tuple],
                progress: Optional[Callable[[int, int], None]]
                ) -> Iterator[Dict[str, object]]:
        """Yield one result per node, *in node order*, as workers
        finish.  ``pool.map`` already yields in task order, so streamed
        ingestion is identical to the old collect-sort-ingest flow —
        but a run killed partway has durably ingested every completed
        node, which is what ``resume`` builds on.  Sets
        ``self.workers_used`` as a side effect (generators cannot
        return it before the caller consumes them)."""
        self.workers_used = 1
        workers = self.config.workers
        if workers > 1:
            try:
                from concurrent.futures import ProcessPoolExecutor
                chunk = max(1, len(tasks) // (workers * 4))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    self.workers_used = workers
                    done = 0
                    for result in pool.map(_profile_node, tasks,
                                           chunksize=chunk):
                        done += 1
                        if progress is not None:
                            progress(done, len(tasks))
                        yield result
                return
            except (OSError, PermissionError):
                self.workers_used = 1   # sandboxed: fall back to serial
        done = 0
        for task in tasks:
            result = _profile_node(task)
            done += 1
            if progress is not None:
                progress(done, len(tasks))
            yield result

    def _crash(self) -> None:
        """Simulate a hard mid-append crash for recovery drills: leave
        a torn half-written event line in the log (flushed, so it is
        really on disk) and SIGKILL this process — no atexit handlers,
        no flushing of anything else, exactly like a power cut."""
        registry = self.registry
        if registry.path is not None:
            with open(registry.events_path, "a") as fh:
                fh.write('{{"seq":{},"time_s":'.format(
                    registry.last_seq + 1))
                fh.flush()
                os.fsync(fh.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    def run(self, now_s: float = 0.0,
            progress: Optional[Callable[[int, int], None]] = None,
            resume: bool = False,
            crash_after: Optional[int] = None
            ) -> FleetProfileSummary:
        """Profile the fleet, ingesting each node as its result lands.

        ``progress(done, total)`` is called after each node completes
        (node order — see :meth:`_stream`).  With ``resume=True``,
        nodes the registry already knows (profiled *or* failed with an
        advisory) are skipped, the event log is repaired first (a
        previous crash may have torn its final line), and the
        remaining nodes produce exactly the events the uninterrupted
        run would have appended — the final snapshot and event log are
        byte-identical either way, which CI asserts.  ``crash_after``
        SIGKILLs the process after that many ingestions (recovery
        drills only; the call never returns).
        """
        cfg = self.config
        indices = list(range(cfg.nodes))
        if resume:
            self.registry.repair_log()
            indices = [i for i in indices
                       if not self.registry.has_node(i)]
        skipped = cfg.nodes - len(indices)
        attempts = 0
        profiling_s = 0.0
        failed_nodes: List[int] = []
        ingested = 0
        rec = get_recorder()
        for result in self._stream(self._tasks(indices), progress):
            attempts += result["attempts"]
            profiling_s += result["elapsed_s"]
            if rec.enabled:
                rec.counter("fleet", "nodes_profiled" if result["ok"]
                            else "nodes_failed")
                rec.observe("fleet", "profile_latency_s",
                            result["elapsed_s"])
            if result["ok"]:
                self.registry.record_profile(
                    result["node"], result["margin_mts"], time_s=now_s,
                    channel_margins=result["channel_margins"],
                    attempts=result["attempts"])
            else:
                failed_nodes.append(result["node"])
                self.registry.record_advisory(
                    result["node"], time_s=now_s,
                    reason="profiling failed after {} attempts"
                           .format(result["attempts"]))
            ingested += 1
            if crash_after is not None and ingested >= crash_after:
                self._crash()
        if self.registry.path is not None:
            self.registry.write_snapshot()
        return FleetProfileSummary(
            nodes=cfg.nodes,
            profiled=len(indices) - len(failed_nodes),
            failed=len(failed_nodes),
            attempts=attempts,
            profiling_s=profiling_s,
            bucket_counts=self.registry.bucket_counts(),
            failed_nodes=tuple(failed_nodes),
            workers_used=self.workers_used,
            skipped=skipped)
