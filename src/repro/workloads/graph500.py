"""Graph500: breadth-first search on a scale-free graph.

Dominated by irregular, data-dependent accesses into a large adjacency
structure: most references are random within a multi-GB footprint and
roughly half chase pointers (the next address comes from the previous
load), so the suite is latency-bound rather than bandwidth-bound.
"""

from ..workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="graph500",
    footprint_bytes=1024 << 20,
    stream_fraction=0.35,        # frontier queues stream
    stream_run_lines=24,
    nstreams=2,
    write_fraction=0.10,         # visited-bitmap updates
    dependent_fraction=0.55,
    gap_cycles_mean=6.5,
    mpi_fraction=0.18,
    hot_fraction=0.68,
    cold_gap_multiplier=15.0,
    description="BFS: pointer-chasing random access",
)
