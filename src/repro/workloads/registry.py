"""Registry of the paper's six HPC benchmark suites (Section II-B).

Exposes the suite profiles in one place, plus each suite's calibration
target from Figure 15 (DRAM bandwidth utilization at manufacturer
specification under Hierarchy1).  The averages the paper reports weigh
every suite equally (footnote 1), which :func:`suite_names` preserves
by returning a stable ordering.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..cpu.trace import TraceRecord
from .base import TraceGenerator, WorkloadProfile
from . import coral2, graph500, hpcg, linpack, lulesh, npb

#: Suite profiles in the paper's presentation order.
PROFILES: Dict[str, WorkloadProfile] = {
    "linpack": linpack.PROFILE,
    "hpcg": hpcg.PROFILE,
    "graph500": graph500.PROFILE,
    "coral2": coral2.PROFILE,
    "lulesh": lulesh.PROFILE,
    "npb": npb.PROFILE,
}

#: Figure 15 calibration anchors: average DRAM bandwidth utilization at
#: spec under Hierarchy1 (fractions of peak).  The paper's figure is
#: not tabulated in its text; the binding calibration constraints are
#: the Figure 5 speedups (which ARE in the text), and these anchors
#: record what the calibrated baseline measures — the ordering (the
#: latency-bound graph suite lowest, the solvers near saturation) is
#: the shape the figure shows.
BANDWIDTH_TARGETS: Dict[str, float] = {
    "linpack": 0.82,
    "hpcg": 0.82,
    "graph500": 0.50,
    "coral2": 0.80,
    "lulesh": 0.78,
    "npb": 0.79,
}

#: Average write share of DRAM traffic reported by the paper ("writes
#: only account for ... 15%, see Figure 15").
AVERAGE_WRITE_SHARE = 0.15

#: Average share of core-hours in MPI communication under Hierarchy1.
AVERAGE_MPI_FRACTION = 0.13


def suite_names() -> List[str]:
    """The six suites in stable order."""
    return list(PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a suite profile; raises ``KeyError`` with the valid names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError("unknown suite {!r}; valid: {}".format(
            name, ", ".join(PROFILES))) from None


def make_trace(name: str, core_id: int, count: int,
               seed: int = 12345) -> Iterator[TraceRecord]:
    """Convenience: a ``count``-record trace of suite ``name`` for one
    core."""
    return TraceGenerator(get_profile(name), core_id, seed).records(count)
