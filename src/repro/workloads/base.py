"""Workload trace-generator framework.

Real HPC binaries are replaced by synthetic L2-reference generators
(see DESIGN.md's substitution table).  Each suite is characterized by:

* ``footprint_bytes`` — the working set that addresses are drawn from
  (far larger than the LLC, so misses happen at realistic rates),
* a mix of *streaming* phases (sequential line-granularity runs, the
  dense linear-algebra inner loops) and *random* phases (irregular
  gathers, graph traversal),
* ``write_fraction`` — share of references that are stores,
* ``dependent_fraction`` — share of random references whose address
  depends on the previous load (pointer chasing; serializes misses),
* ``gap_cycles`` — mean compute cycles between consecutive L2
  references, controlling memory intensity, and
* ``mpi_fraction`` — share of core-hours spent in MPI communication
  (Section II-B measures 13% on average); modelled as extra compute
  gaps that never speed up with memory.

The parameters of the six concrete suites are calibrated so the
baseline simulation reproduces the paper's Figure 15 bandwidth
utilizations and its ~15% average write share.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from ..cache.cache import LINE_BYTES
from ..cpu.trace import TraceRecord


@dataclass(frozen=True)
class WorkloadProfile:
    """Calibration parameters of one benchmark suite.

    Real HPC codes alternate memory-intense sweeps with compute/
    communication phases; the generator reproduces this with *hot*
    phases (gap mean = ``gap_cycles_mean``) covering ``hot_fraction``
    of references and *cold* phases whose gaps are
    ``cold_gap_multiplier`` longer.  The hot share bounds how much of
    the execution can speed up with faster memory, which is what
    Figure 5's per-suite speedups hinge on.
    """
    name: str
    footprint_bytes: int
    stream_fraction: float        # of references that belong to streams
    stream_run_lines: int         # consecutive lines per streaming run
    nstreams: int                 # concurrent streams (arrays) interleaved
    write_fraction: float
    dependent_fraction: float     # of random refs that are dependent
    gap_cycles_mean: float        # hot-phase mean compute gap
    mpi_fraction: float
    hot_fraction: float = 0.75    # share of refs in memory-intense phases
    cold_gap_multiplier: float = 20.0
    phase_length_refs: int = 512
    description: str = ""

    def __post_init__(self) -> None:
        if self.footprint_bytes < (1 << 20):
            raise ValueError("footprint must be at least 1 MB")
        for frac_name in ("stream_fraction", "write_fraction",
                          "dependent_fraction", "mpi_fraction"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError("{} must be in [0, 1]".format(frac_name))
        if self.stream_run_lines <= 0 or self.nstreams <= 0:
            raise ValueError("stream geometry must be positive")


class TraceGenerator:
    """Generates a deterministic L2-reference trace from a profile.

    Each core gets its own seed (and its own address offset so cores
    mostly work on distinct data, as MPI ranks do).
    """

    def __init__(self, profile: WorkloadProfile, core_id: int = 0,
                 seed: int = 12345):
        self.profile = profile
        self.core_id = core_id
        self.seed = seed

    def records(self, count: int) -> Iterator[TraceRecord]:
        """Yield ``count`` trace records one at a time.

        Thin adapter over :meth:`records_batched`; both produce the
        identical record stream (same RNG draw order)."""
        for batch in self.records_batched(count):
            for record in batch:
                yield record

    def records_batched(self, count: int,
                        batch_size: int = 256) -> Iterator[List[TraceRecord]]:
        """Yield ``count`` trace records in chunks of ``batch_size``.

        Batching amortizes generator suspend/resume over whole chunks,
        which matters for bulk consumers (characterization sweeps, the
        perf harness) that materialize traces; per-record draws and
        their order are identical to :meth:`records`."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        prof = self.profile
        rng = random.Random((self.seed << 8) ^ self.core_id)
        lines_total = prof.footprint_bytes // LINE_BYTES
        # Private slice per core, with 1/8 shared region at the top.
        slice_lines = lines_total
        base_line = (self.core_id * 0x9E3779B1) % max(1, lines_total // 4)
        # Stream cursors, one per concurrent stream.
        cursors: List[int] = [
            (base_line + rng.randrange(lines_total)) % lines_total
            for _ in range(prof.nstreams)]
        runs_left: List[int] = [0] * prof.nstreams
        emitted = 0
        # Effective gap: the MPI share inflates compute time uniformly.
        gap_mean = prof.gap_cycles_mean
        mpi_extra = gap_mean * prof.mpi_fraction / max(
            1e-9, 1.0 - prof.mpi_fraction)
        hot_mean = gap_mean + mpi_extra
        cold_mean = hot_mean * prof.cold_gap_multiplier
        phase_left = 0
        phase_hot = True
        batch: List[TraceRecord] = []
        append = batch.append
        while emitted < count:
            if phase_left <= 0:
                phase_hot = rng.random() < prof.hot_fraction
                phase_left = max(1, int(rng.expovariate(
                    1.0 / prof.phase_length_refs)))
            phase_left -= 1
            gap = self._draw_gap(rng, hot_mean if phase_hot else cold_mean)
            is_write = rng.random() < prof.write_fraction
            if rng.random() < prof.stream_fraction:
                s = rng.randrange(prof.nstreams)
                if runs_left[s] <= 0:
                    cursors[s] = (base_line +
                                  rng.randrange(slice_lines)) % lines_total
                    runs_left[s] = prof.stream_run_lines
                line = cursors[s]
                cursors[s] = (cursors[s] + 1) % lines_total
                runs_left[s] -= 1
                dependent = False
            else:
                line = (base_line + rng.randrange(slice_lines)) % lines_total
                dependent = (not is_write and
                             rng.random() < prof.dependent_fraction)
            append(TraceRecord(line * LINE_BYTES, is_write, gap, dependent))
            emitted += 1
            if len(batch) >= batch_size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    @staticmethod
    def _draw_gap(rng: random.Random, mean: float) -> int:
        """Geometric-ish gap distribution with the requested mean."""
        if mean <= 0:
            return 0
        return min(int(rng.expovariate(1.0 / mean)), int(mean * 8) + 1)
