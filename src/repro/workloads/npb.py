"""NAS Parallel Benchmarks (NPB).

The suite average over CG/MG/FT/BT/SP/LU-style kernels: a balanced mix
of strided streams (FT transposes, MG stencils) and sparse access
(CG), with moderate memory intensity and a compute-heavier profile
than the other suites.
"""

from ..workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="npb",
    footprint_bytes=512 << 20,
    stream_fraction=0.78,
    stream_run_lines=32,
    nstreams=3,
    write_fraction=0.14,
    dependent_fraction=0.12,
    gap_cycles_mean=5.0,
    mpi_fraction=0.13,
    hot_fraction=0.72,
    cold_gap_multiplier=16.0,
    description="NAS kernel mix: stencils, transposes, sparse CG",
)
