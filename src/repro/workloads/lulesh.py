"""LULESH: Lagrangian shock hydrodynamics.

Unstructured-mesh stencil kernels: many concurrent node/element arrays
are streamed each timestep with some indirection through connectivity
lists, and a sizeable store share from updating element state.
"""

from ..workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="lulesh",
    footprint_bytes=384 << 20,
    stream_fraction=0.85,
    stream_run_lines=32,
    nstreams=4,                  # many field arrays per kernel
    write_fraction=0.20,
    dependent_fraction=0.10,
    gap_cycles_mean=4.0,
    mpi_fraction=0.12,
    hot_fraction=0.85,
    cold_gap_multiplier=18.0,
    description="hydrodynamics stencil streams + connectivity gathers",
)
