"""CORAL-2 benchmarks (AMG, Kripke, Quicksilver, Nekbone mix).

The paper evaluates four CORAL-2 benchmarks; the aggregate behaviour
mixes algebraic-multigrid sparse operations with structured transport
sweeps: mid-length streams plus a significant irregular component.
"""

from ..workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="coral2",
    footprint_bytes=640 << 20,
    stream_fraction=0.8,
    stream_run_lines=32,
    nstreams=3,
    write_fraction=0.16,
    dependent_fraction=0.12,
    gap_cycles_mean=4.5,
    mpi_fraction=0.14,
    hot_fraction=0.82,
    cold_gap_multiplier=18.0,
    description="AMG/Kripke-style sparse + sweep mix",
)
