"""Linpack (HPL): dense LU factorization.

The de facto HPC ranking benchmark. Its inner loops are blocked DGEMM
updates: long unit-stride runs over panel and trailing-matrix blocks
with high memory intensity, frequent stores to the updated C blocks,
and essentially no pointer chasing.  It is the most bandwidth-bound of
the six suites, which is why the paper's Figure 5 reports its largest
speedup (1.24x) from exploiting memory margins.
"""

from ..workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="linpack",
    footprint_bytes=512 << 20,
    stream_fraction=0.95,
    stream_run_lines=64,
    nstreams=3,                  # A panel, B panel, C update
    write_fraction=0.22,         # C-block updates write back
    dependent_fraction=0.02,
    gap_cycles_mean=4.0,
    mpi_fraction=0.10,
    hot_fraction=0.91,
    cold_gap_multiplier=18.0,
    description="dense LU / blocked DGEMM streams",
)
