"""Synthetic HPC workload trace generators for the paper's six
benchmark suites."""

from .base import TraceGenerator, WorkloadProfile
from .registry import (AVERAGE_MPI_FRACTION, AVERAGE_WRITE_SHARE,
                       BANDWIDTH_TARGETS, PROFILES, get_profile,
                       make_trace, suite_names)

__all__ = [
    "AVERAGE_MPI_FRACTION", "AVERAGE_WRITE_SHARE", "BANDWIDTH_TARGETS",
    "PROFILES", "TraceGenerator", "WorkloadProfile", "get_profile",
    "make_trace", "suite_names",
]
