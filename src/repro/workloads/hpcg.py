"""HPCG: preconditioned conjugate gradient.

Sparse matrix-vector products dominate: streaming reads of the matrix
values/column indices interleaved with irregular gathers of the source
vector, plus streaming vector updates (AXPY). Highly memory-bound with
a moderate irregular component.
"""

from ..workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="hpcg",
    footprint_bytes=768 << 20,
    stream_fraction=0.85,        # matrix values + vector updates
    stream_run_lines=48,
    nstreams=3,
    write_fraction=0.12,
    dependent_fraction=0.1,     # gathers through the index array
    gap_cycles_mean=3.0,
    mpi_fraction=0.12,
    hot_fraction=0.88,
    cold_gap_multiplier=18.0,
    description="sparse CG: SpMV gathers + vector streams",
)
