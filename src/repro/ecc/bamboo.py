"""Bamboo-ECC memory-block codec (Section III-B).

Server memory blocks are 64 data bytes plus 8 ECC bytes stored in the
module's dedicated ECC chips.  Following the paper, we:

* compute all eight Reed-Solomon check bytes over the *whole* 64-byte
  block (Bamboo-ECC [58]), rather than byte-sliced SEC-DED, and
* fold the block's memory address into the code ("Hetero-DMR also
  detects all address bus errors by using the address of a block and
  all data in the block to compute the ECC for the block" [72]).

The address participates as extra *virtual* message symbols of a
shortened RS code: both the writer and the checker know the address
they intended, prepend its bytes to the data, and compute/verify parity
over the combined message.  The virtual symbols are never stored, so
the on-DIMM layout stays 64 + 8 bytes, and an address-bus error makes
the reader check data fetched from location B against the parity of
location A, which the code flags as corruption.

The virtual prefix additionally carries a constant non-zero *format
tag*.  Without it, address 0 is degenerate: its six address bytes are
all zero, so the all-zero 72-byte stored block is a valid codeword
there and a stuck-at-zero device fault would slip through detect-only
decoding silently.  With the tag the virtual prefix is never all-zero,
and since a non-zero RS(<=79,71) codeword has weight >= 9 while an
all-zero stored block limits the codeword weight to the 7 prefix
symbols, the zeroed block is detected at every address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .reed_solomon import DecodeFailure, ReedSolomon

#: Data bytes per memory block (one cache line).
BLOCK_DATA_BYTES = 64

#: ECC bytes per memory block (one x8 ECC chip worth per burst).
BLOCK_ECC_BYTES = 8

#: Bytes of the block address folded into the codeword.
ADDRESS_BYTES = 6

#: Constant non-zero virtual symbol leading the folded prefix, so the
#: prefix never vanishes (see the module docstring: without it the
#: all-zero stored block is a valid codeword at address 0).
FORMAT_TAG = 0x1D


@dataclass(frozen=True)
class CodedBlock:
    """A 72-byte unit as stored in DRAM: 64 data bytes + 8 ECC bytes."""
    data: Tuple[int, ...]
    ecc: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.data) != BLOCK_DATA_BYTES:
            raise ValueError("block data must be 64 bytes")
        if len(self.ecc) != BLOCK_ECC_BYTES:
            raise ValueError("block ECC must be 8 bytes")

    def stored_bytes(self) -> List[int]:
        """All 72 bytes as laid out in the module (data then ECC)."""
        return list(self.data) + list(self.ecc)

    def with_stored_bytes(self, raw: Sequence[int]) -> "CodedBlock":
        """Rebuild a block from (possibly corrupted) raw storage bytes."""
        if len(raw) != BLOCK_DATA_BYTES + BLOCK_ECC_BYTES:
            raise ValueError("stored block must be 72 bytes")
        return CodedBlock(tuple(raw[:BLOCK_DATA_BYTES]),
                          tuple(raw[BLOCK_DATA_BYTES:]))


class BambooCodec:
    """Encoder/decoder for address-inclusive Bamboo-ECC blocks."""

    def __init__(self, include_address: bool = True):
        self.include_address = include_address
        self._prefix_len = (ADDRESS_BYTES + 1) if include_address else 0
        message_len = BLOCK_DATA_BYTES + self._prefix_len
        self._rs = ReedSolomon(message_len, BLOCK_ECC_BYTES)

    # -- encode -------------------------------------------------------------

    def encode(self, data: Sequence[int], address: int = 0) -> CodedBlock:
        """Encode 64 data bytes (and the block address) into a block."""
        if len(data) != BLOCK_DATA_BYTES:
            raise ValueError("data must be 64 bytes")
        message = self._message(data, address)
        parity = self._rs.parity_of(message)
        return CodedBlock(tuple(data), tuple(parity))

    # -- detect-only decode (used on copies) ---------------------------------

    def check(self, block: CodedBlock, address: int = 0) -> bool:
        """Detect-only decode: return True when the block is clean.

        Stops after syndrome computation — never attempts correction, so
        it cannot miscorrect regardless of how many bytes are bad.
        """
        codeword = self._codeword(block, address)
        return not self._rs.detect(codeword)

    # -- detect-and-correct decode (used on originals) ------------------------

    def correct(self, block: CodedBlock,
                address: int = 0) -> Tuple[CodedBlock, List[int]]:
        """Conventional decode: detect and correct up to 4 bad bytes.

        Returns ``(repaired_block, corrected_byte_offsets)`` where the
        offsets index the 72 stored bytes.  Raises
        :class:`~repro.ecc.reed_solomon.DecodeFailure` on uncorrectable
        (but detected) errors, and raises it as well if the decoder
        claims a correction inside the virtual address symbols, which
        cannot be erroneous in storage and therefore signals an
        address-bus error or a miscorrection.
        """
        codeword = self._codeword(block, address)
        result = self._rs.decode(codeword)
        prefix = self._prefix_len
        if any(p < prefix for p in result.error_positions):
            raise DecodeFailure(
                "correction landed in virtual address symbols")
        repaired = result.corrected[prefix:]
        parity = codeword[len(codeword) - BLOCK_ECC_BYTES:]
        if result.detected:
            # Recompute parity from the repaired message so the stored
            # ECC bytes are also clean after the fix.
            parity = self._rs.parity_of(result.corrected)
        stored_positions = [p - prefix for p in result.error_positions]
        return (CodedBlock(tuple(repaired), tuple(parity)),
                stored_positions)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def address_bytes(address: int) -> List[int]:
        """Little-endian 6-byte encoding of a block address."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return [(address >> (8 * i)) & 0xFF for i in range(ADDRESS_BYTES)]

    def _message(self, data: Sequence[int], address: int) -> List[int]:
        if self.include_address:
            return [FORMAT_TAG] + self.address_bytes(address) + list(data)
        return list(data)

    def _codeword(self, block: CodedBlock, address: int) -> List[int]:
        return (self._message(block.data, address) + list(block.ecc))
