"""ECC decode policies (Section III-B).

Conventional server controllers use the eight per-block ECC bytes to
both detect and correct errors; Hetero-DMR instead spends the entire
ECC budget on *detection* when reading copies, because a full decode can
miscorrect in the presence of too many errors and cause silent data
corruption.  This module exposes both policies behind one interface so
the memory controller can swap them per access type, plus the SDC
arithmetic the paper uses to size its epoch threshold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .bamboo import BambooCodec, CodedBlock
from .reed_solomon import DecodeFailure, undetected_error_probability

#: Hours in one billion years, the paper's target mean time to SDC.
BILLION_YEARS_HOURS = 1_000_000_000 * 365 * 24

#: Server mean-time-to-SDC target the paper cites (Bossen, 2002).
SERVER_MTTSDC_YEARS = 1000


class DecodeStatus(enum.Enum):
    """Outcome classes of a policy decode."""
    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTED = "detected_uncorrected"


@dataclass(frozen=True)
class PolicyResult:
    """Result of decoding one block under a policy.

    ``data`` is None when the policy refuses to hand data upward
    (detected error under detect-only, or uncorrectable error).
    """
    status: DecodeStatus
    data: Optional[Tuple[int, ...]]
    corrected_positions: Tuple[int, ...] = ()


class DetectOnlyPolicy:
    """Use all eight ECC bytes purely for detection (copies).

    Guaranteed to flag any error touching up to eight of the 72 stored
    bytes; wider errors slip through with probability 2^-64 per access.
    """

    def __init__(self, codec: Optional[BambooCodec] = None):
        self.codec = codec or BambooCodec()

    def decode(self, block: CodedBlock, address: int = 0) -> PolicyResult:
        if self.codec.check(block, address):
            return PolicyResult(DecodeStatus.CLEAN, block.data)
        return PolicyResult(DecodeStatus.DETECTED_UNCORRECTED, None)


class DetectAndCorrectPolicy:
    """Conventional decode: correct up to four bad bytes (originals)."""

    def __init__(self, codec: Optional[BambooCodec] = None):
        self.codec = codec or BambooCodec()

    def decode(self, block: CodedBlock, address: int = 0) -> PolicyResult:
        if self.codec.check(block, address):
            return PolicyResult(DecodeStatus.CLEAN, block.data)
        try:
            repaired, positions = self.codec.correct(block, address)
        except DecodeFailure:
            return PolicyResult(DecodeStatus.DETECTED_UNCORRECTED, None)
        return PolicyResult(DecodeStatus.CORRECTED, repaired.data,
                            tuple(positions))


def sdc_epoch_threshold(target_mttsdc_hours: float = BILLION_YEARS_HOURS,
                        nparity: int = 8) -> int:
    """Per-hour 8B+ error budget bounding mean time to SDC.

    Section III-B: a random wide error evades eight RS bytes with
    probability 2^-64, so a system encounters one SDC per 2^64 detected
    8B+ errors; dividing 2^64 by one billion years expressed in hours
    yields the ~2.1M errors/hour epoch threshold.
    """
    if target_mttsdc_hours <= 0:
        raise ValueError("target_mttsdc_hours must be positive")
    escapes_per_sdc = 1.0 / undetected_error_probability(nparity)
    return int(escapes_per_sdc / target_mttsdc_hours)


def sdc_overhead_vs_server_target(
        target_mttsdc_years: float = 1_000_000_000) -> float:
    """System-level SDC overhead relative to the 1000-year server target
    (the paper's 'one over one million')."""
    return SERVER_MTTSDC_YEARS / target_mttsdc_years
