"""Systematic Reed-Solomon codes over GF(2^8).

The Bamboo ECC layout (Kim et al., HPCA'15) used by the paper computes
eight Reed-Solomon check bytes over all 64 data bytes of a memory block.
This module implements the underlying RS machinery:

* systematic encoding with a degree-``nparity`` generator polynomial,
* syndrome computation (all-zero syndromes <=> valid codeword),
* full decoding (Berlekamp-Massey + Chien search + Forney) used when a
  conventional controller *corrects* errors in original blocks, and
* detect-only decoding used by Hetero-DMR on copies.

A Reed-Solomon code with ``nparity`` check symbols has minimum distance
``nparity + 1``; it is therefore **guaranteed** to detect any error that
corrupts up to ``nparity`` symbols of the codeword, and it can correct
up to ``nparity // 2`` symbol errors.

Polynomials are represented highest-degree-coefficient-first, matching
:mod:`repro.ecc.gf256`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

from .gf256 import (FIELD_ORDER, gf_div, gf_exp, gf_inv, gf_mul, gf_pow,
                    poly_add, poly_divmod, poly_eval, poly_mul, poly_scale)


@lru_cache(maxsize=None)
def _generator_poly(nparity: int) -> Tuple[int, ...]:
    """Generator polynomial with roots alpha^0..alpha^(nparity-1),
    highest-degree-coefficient-first (monic)."""
    g = [1]
    for i in range(nparity):
        g = poly_mul(g, [1, gf_exp(i)])
    return tuple(g)


@lru_cache(maxsize=None)
def _encode_rows(nparity: int) -> Tuple[Tuple[int, ...], ...]:
    """Precomputed LFSR feedback rows for systematic encoding.

    ``_encode_rows(p)[c][j] == gf_mul(generator[j + 1], c)`` — the
    products a feedback byte ``c`` injects into each shift-register
    cell.  Building the 256-row table once per parity width turns the
    per-message-byte inner loop of :meth:`ReedSolomon.encode` into
    table lookups and XORs (no ``gf_mul`` calls on the hot path).  The
    table is shared by every codec instance with the same ``nparity``.
    """
    taps = _generator_poly(nparity)[1:]
    return tuple(tuple(gf_mul(t, c) for t in taps) for c in range(256))


class DecodeFailure(Exception):
    """Raised when correction is requested but the error pattern exceeds
    the code's correction capability in a *detectable* way."""


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a full (detect-and-correct) decode.

    Attributes:
        corrected: the repaired message symbols.
        error_positions: codeword indices that were repaired.
        detected: whether any error was detected at all.
    """
    corrected: List[int]
    error_positions: List[int]
    detected: bool


class ReedSolomon:
    """A shortened systematic RS code with ``nparity`` check symbols.

    ``message_len`` is the number of message symbols per codeword; the
    codeword length is ``message_len + nparity`` and must not exceed 255.
    """

    def __init__(self, message_len: int, nparity: int = 8):
        if message_len <= 0:
            raise ValueError("message_len must be positive")
        if nparity <= 0:
            raise ValueError("nparity must be positive")
        if message_len + nparity > FIELD_ORDER:
            raise ValueError("codeword longer than GF(2^8) allows")
        self.message_len = message_len
        self.nparity = nparity
        self.codeword_len = message_len + nparity
        self._generator = self._build_generator(nparity)
        self._rows = _encode_rows(nparity)

    @staticmethod
    def _build_generator(nparity: int) -> List[int]:
        return list(_generator_poly(nparity))

    # -- encoding -----------------------------------------------------------

    def encode(self, message: Sequence[int]) -> List[int]:
        """Return the full systematic codeword ``message + parity``.

        Table-driven LFSR division: each message byte's feedback term
        indexes a precomputed generator-product row, so the inner loop
        is XOR-and-shift only.  Produces bit-identical parity to the
        long-division reference (:meth:`_parity_reference`)."""
        message = self._check_symbols(message, self.message_len, "message")
        rows = self._rows
        nparity = self.nparity
        last = nparity - 1
        reg = [0] * nparity
        for m in message:
            row = rows[m ^ reg[0]]
            for j in range(last):
                reg[j] = reg[j + 1] ^ row[j]
            reg[last] = row[last]
        return list(message) + reg

    def _parity_reference(self, message: Sequence[int]) -> List[int]:
        """Reference parity via polynomial long division — kept as the
        equivalence oracle for the table-driven :meth:`encode`."""
        _, remainder = poly_divmod(
            list(message) + [0] * self.nparity, self._generator)
        return [0] * (self.nparity - len(remainder)) + remainder

    def parity_of(self, message: Sequence[int]) -> List[int]:
        """Return only the parity symbols for ``message``."""
        return self.encode(message)[self.message_len:]

    # -- detection ----------------------------------------------------------

    def syndromes(self, codeword: Sequence[int]) -> List[int]:
        """Evaluate the received word at the code roots alpha^0..alpha^(p-1)."""
        codeword = self._check_symbols(
            codeword, self.codeword_len, "codeword")
        return [poly_eval(codeword, gf_exp(i)) for i in range(self.nparity)]

    def detect(self, codeword: Sequence[int]) -> bool:
        """True when the received word is NOT a valid codeword.

        This is the detect-only decode Hetero-DMR applies to copies: it
        stops after syndrome computation and never attempts correction,
        so it can never miscorrect.
        """
        return any(s != 0 for s in self.syndromes(codeword))

    # -- correction ---------------------------------------------------------

    def decode(self, codeword: Sequence[int]) -> DecodeResult:
        """Full decode: detect and, if possible, correct.

        Raises :class:`DecodeFailure` when errors are detected but are
        uncorrectable *and the decoder can tell*.  Error patterns beyond
        ``nparity // 2`` symbols may silently miscorrect — exactly the
        hazard the paper's detect-only policy avoids.
        """
        received = list(
            self._check_symbols(codeword, self.codeword_len, "codeword"))
        synd = [poly_eval(received, gf_exp(i)) for i in range(self.nparity)]
        if all(s == 0 for s in synd):
            return DecodeResult(received[:self.message_len], [], False)
        locator = self._find_error_locator(synd)
        nerrors = len(locator) - 1
        if nerrors > self.nparity // 2:
            raise DecodeFailure("error locator degree exceeds t")
        positions = self._find_error_positions(locator)
        if len(positions) != nerrors:
            raise DecodeFailure("locator roots do not match its degree")
        repaired = self._correct_errata(received, synd, positions)
        if any(poly_eval(repaired, gf_exp(i)) != 0
               for i in range(self.nparity)):
            raise DecodeFailure("post-correction syndromes nonzero")
        return DecodeResult(repaired[:self.message_len], positions, True)

    # -- internals ----------------------------------------------------------

    def _find_error_locator(self, synd: Sequence[int]) -> List[int]:
        """Berlekamp-Massey; returns the locator highest-degree-first."""
        err_loc = [1]
        old_loc = [1]
        for i in range(self.nparity):
            delta = synd[i]
            for j in range(1, len(err_loc)):
                delta ^= gf_mul(err_loc[-(j + 1)], synd[i - j])
            old_loc = old_loc + [0]
            if delta != 0:
                if len(old_loc) > len(err_loc):
                    new_loc = poly_scale(old_loc, delta)
                    old_loc = poly_scale(err_loc, gf_inv(delta))
                    err_loc = new_loc
                err_loc = poly_add(err_loc, poly_scale(old_loc, delta))
        while len(err_loc) > 1 and err_loc[0] == 0:
            err_loc = err_loc[1:]
        return err_loc

    def _find_error_positions(self, locator: Sequence[int]) -> List[int]:
        """Chien search over the (shortened) codeword positions.

        The locator has a root at alpha^(-c) for an error whose symbol
        multiplies x^c in the codeword polynomial, so we probe the
        inverse powers for every in-range coefficient position.
        """
        positions = []
        for coef_pos in range(self.codeword_len):
            if poly_eval(locator, gf_pow(gf_exp(1), -coef_pos)) == 0:
                positions.append(self.codeword_len - 1 - coef_pos)
        return sorted(positions)

    def _correct_errata(self, received: List[int], synd: Sequence[int],
                        positions: Sequence[int]) -> List[int]:
        """Forney algorithm: compute magnitudes at known positions."""
        coef_pos = [self.codeword_len - 1 - p for p in positions]
        # Errata locator from the known positions.
        loc = [1]
        for cp in coef_pos:
            loc = poly_mul(loc, poly_add([1], [gf_exp(cp), 0]))
        # Error evaluator Omega(x) = S(x) * Lambda(x) mod x^(2t), where
        # S(x) = sum_k S_k x^k.  For GF(2^m) codes with roots at
        # alpha^0..alpha^(2t-1) the Forney magnitude reduces to
        # e_j = Omega(X_j^-1) / prod_{l != j} (1 - X_l X_j^-1).
        product = poly_mul(list(reversed(list(synd))), loc)
        _, err_eval = poly_divmod(product, [1] + [0] * self.nparity)
        x_vals = [gf_pow(gf_exp(1), cp) for cp in coef_pos]
        for i, pos in enumerate(positions):
            xi_inv = gf_inv(x_vals[i])
            loc_prime = 1
            for j, xj in enumerate(x_vals):
                if j != i:
                    loc_prime = gf_mul(loc_prime, 1 ^ gf_mul(xi_inv, xj))
            if loc_prime == 0:
                raise DecodeFailure("Forney derivative is zero")
            y = poly_eval(err_eval, xi_inv)
            received[pos] ^= gf_div(y, loc_prime)
        return received

    @staticmethod
    def _check_symbols(symbols: Sequence[int], expected_len: int,
                       what: str) -> Sequence[int]:
        if len(symbols) != expected_len:
            raise ValueError(
                "{} length must be {}, got {}".format(
                    what, expected_len, len(symbols)))
        if any(not 0 <= s <= 255 for s in symbols):
            raise ValueError("{} symbols must be bytes (0..255)".format(what))
        return symbols


def undetected_error_probability(nparity: int = 8) -> float:
    """Probability that a *random* >nparity-byte error pattern passes the
    syndrome check: 1 / 2^(8 * nparity).  Section III-B computes this as
    1/2^64 for the eight ECC bytes."""
    return 1.0 / float(2 ** (8 * nparity))
