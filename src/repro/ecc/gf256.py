"""Arithmetic over GF(2^8), the symbol field of the Bamboo ECC code.

The field is constructed from the primitive polynomial
x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the conventional choice for byte-wise
Reed-Solomon codes.  Multiplication and division go through log/antilog
tables built once at import time.
"""

from __future__ import annotations

from typing import List, Sequence

#: Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D

#: Order of the multiplicative group.
FIELD_ORDER = 255


def _build_tables() -> "tuple[List[int], List[int]]":
    exp = [0] * (FIELD_ORDER * 2)
    log = [0] * 256
    x = 1
    for i in range(FIELD_ORDER):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    for i in range(FIELD_ORDER, FIELD_ORDER * 2):
        exp[i] = exp[i - FIELD_ORDER]
    return exp, log


_EXP, _LOG = _build_tables()


def gf_add(a: int, b: int) -> int:
    """Addition in GF(2^8) is XOR."""
    return a ^ b


def gf_sub(a: int, b: int) -> int:
    """Subtraction equals addition in characteristic-2 fields."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b``; raises ``ZeroDivisionError`` when b == 0."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return _EXP[(_LOG[a] - _LOG[b]) % FIELD_ORDER]


def gf_inv(a: int) -> int:
    """Multiplicative inverse; raises ``ZeroDivisionError`` for 0."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(2^8)")
    return _EXP[FIELD_ORDER - _LOG[a]]


def gf_pow(a: int, n: int) -> int:
    """Raise ``a`` to the integer power ``n`` (n may be negative)."""
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise ZeroDivisionError("zero to a negative power")
        return 0
    return _EXP[(_LOG[a] * n) % FIELD_ORDER]


def gf_exp(n: int) -> int:
    """alpha**n where alpha is the primitive element (0x02)."""
    return _EXP[n % FIELD_ORDER]


def gf_log(a: int) -> int:
    """Discrete log base alpha; raises ``ValueError`` for 0."""
    if a == 0:
        raise ValueError("log of zero is undefined")
    return _LOG[a]


# ---------------------------------------------------------------------------
# Polynomial arithmetic (coefficients in GF(2^8), highest degree first)
# ---------------------------------------------------------------------------

def poly_scale(p: Sequence[int], x: int) -> List[int]:
    """Multiply polynomial ``p`` by the scalar ``x``."""
    return [gf_mul(c, x) for c in p]


def poly_add(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Add two polynomials."""
    r = [0] * max(len(p), len(q))
    r[len(r) - len(p):] = list(p)
    for i, c in enumerate(q):
        r[i + len(r) - len(q)] ^= c
    return r


def poly_mul(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Multiply two polynomials."""
    r = [0] * (len(p) + len(q) - 1)
    for i, pc in enumerate(p):
        if pc == 0:
            continue
        for j, qc in enumerate(q):
            r[i + j] ^= gf_mul(pc, qc)
    return r


def poly_eval(p: Sequence[int], x: int) -> int:
    """Evaluate polynomial ``p`` at ``x`` via Horner's rule."""
    y = 0
    for c in p:
        y = gf_mul(y, x) ^ c
    return y


def poly_divmod(dividend: Sequence[int],
                divisor: Sequence[int]) -> "tuple[List[int], List[int]]":
    """Polynomial long division; returns ``(quotient, remainder)``."""
    out = list(dividend)
    normalizer = divisor[0]
    for i in range(len(dividend) - len(divisor) + 1):
        out[i] = gf_div(out[i], normalizer)
        coef = out[i]
        if coef == 0:
            continue
        for j in range(1, len(divisor)):
            out[i + j] ^= gf_mul(divisor[j], coef)
    sep = len(dividend) - len(divisor) + 1
    return out[:sep], out[sep:]
