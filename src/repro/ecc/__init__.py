"""Bamboo Reed-Solomon ECC substrate (Section III-B of the paper)."""

from .bamboo import (ADDRESS_BYTES, BLOCK_DATA_BYTES, BLOCK_ECC_BYTES,
                     FORMAT_TAG, BambooCodec, CodedBlock)
from .policy import (DecodeStatus, DetectAndCorrectPolicy, DetectOnlyPolicy,
                     PolicyResult, sdc_epoch_threshold,
                     sdc_overhead_vs_server_target)
from .reed_solomon import (DecodeFailure, DecodeResult, ReedSolomon,
                           undetected_error_probability)

__all__ = [
    "ADDRESS_BYTES", "BLOCK_DATA_BYTES", "BLOCK_ECC_BYTES",
    "BambooCodec", "CodedBlock", "DecodeFailure", "DecodeResult",
    "DecodeStatus", "DetectAndCorrectPolicy", "DetectOnlyPolicy",
    "PolicyResult", "ReedSolomon", "sdc_epoch_threshold",
    "sdc_overhead_vs_server_target", "undetected_error_probability",
]
