"""Fidelity-tier selection for node simulations.

Two tiers produce :class:`~repro.sim.node.NodeResult` objects:

* ``cycle`` — the trace-driven cycle-level simulator (the reference;
  every paper figure is defined by it), and
* ``fast`` — the calibrated closed-form analytical model
  (:mod:`repro.fastmodel`), ~10^3-10^4x cheaper per cell, cross-checked
  against the cycle tier on the Figure 12 grid.

:func:`resolve_fidelity` mirrors :func:`repro.sim.engine.make_event_loop`'s
``REPRO_ENGINE`` handling: an explicit kind wins, otherwise the
``REPRO_FIDELITY`` environment variable decides (defaulting to
``cycle``), and unknown values raise rather than silently changing
which model produced the numbers.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted by :func:`resolve_fidelity` when no
#: explicit fidelity kind is passed.
FIDELITY_ENV_VAR = "REPRO_FIDELITY"

#: Fidelity tiers :func:`resolve_fidelity` understands.
VALID_FIDELITIES = ("cycle", "fast")


def resolve_fidelity(kind: Optional[str] = None) -> str:
    """Resolve a fidelity tier name.

    ``kind`` may be ``"cycle"``, ``"fast"``, or None, in which case the
    ``REPRO_FIDELITY`` environment variable decides (defaulting to the
    cycle reference tier).  Environment values are stripped and
    lowercased; anything else raises — a typo in ``REPRO_FIDELITY``
    must not silently change the model under test.
    """
    from_env = False
    if kind is None:
        env = os.environ.get(FIDELITY_ENV_VAR, "").strip().lower()
        from_env = bool(env)
        kind = env or "cycle"
    if kind not in VALID_FIDELITIES:
        raise ValueError(
            "unknown fidelity {!r}{}; valid fidelity tiers: {}".format(
                kind,
                " (from the {} environment variable)".format(
                    FIDELITY_ENV_VAR) if from_env else "",
                ", ".join(VALID_FIDELITIES)))
    return kind
