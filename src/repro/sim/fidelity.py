"""Fidelity-tier selection for node simulations.

Two tiers produce :class:`~repro.sim.node.NodeResult` objects:

* ``cycle`` — the trace-driven cycle-level simulator (the reference;
  every paper figure is defined by it), and
* ``fast`` — the calibrated closed-form analytical model
  (:mod:`repro.fastmodel`), ~10^3-10^4x cheaper per cell, cross-checked
  against the cycle tier on the Figure 12 grid.

:func:`resolve_fidelity` mirrors :func:`repro.sim.engine.make_event_loop`'s
``REPRO_ENGINE`` handling: an explicit kind wins, otherwise the
``REPRO_FIDELITY`` environment variable decides (defaulting to
``cycle``), and unknown values raise rather than silently changing
which model produced the numbers.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted by :func:`resolve_fidelity` when no
#: explicit fidelity kind is passed.
FIDELITY_ENV_VAR = "REPRO_FIDELITY"

#: Fidelity tiers :func:`resolve_fidelity` understands.
VALID_FIDELITIES = ("cycle", "fast")


class FidelityError(ValueError):
    """A configuration asks a fidelity tier for something it cannot
    model — e.g. fault-injection knobs under the closed-form fast tier.

    Raised at *config-validation* time by every entry point
    (``NodeConfig`` / ``ExperimentRunner`` / ``SweepConfig`` /
    ``repro hpc`` / ``ChaosConfig``), so a bad combination fails
    immediately with the offending knob named instead of silently
    computing or dying deep inside a worker.
    """


def ensure_fidelity_supported(kind: Optional[str] = None,
                              knobs: Optional[dict] = None,
                              source: Optional[str] = None) -> str:
    """Resolve ``kind`` and reject knobs the tier cannot honor.

    ``knobs`` maps knob names to their configured values; any truthy
    value is unsupported under the fast tier (the closed-form model has
    no event stream to inject faults into, and no per-channel state to
    specialize).  Returns the resolved fidelity when the combination is
    legal; raises :class:`FidelityError` naming every offending knob
    (and ``source``, the entry point being validated) otherwise.
    """
    resolved = resolve_fidelity(kind)
    if resolved != "fast" or not knobs:
        return resolved
    offending = ["{}={!r}".format(name, value)
                 for name, value in knobs.items() if value]
    if offending:
        raise FidelityError(
            "fast fidelity cannot model {}{}; drop the knob(s) or use "
            "fidelity='cycle'".format(
                ", ".join(offending),
                " (from {})".format(source) if source else ""))
    return resolved


def resolve_fidelity(kind: Optional[str] = None) -> str:
    """Resolve a fidelity tier name.

    ``kind`` may be ``"cycle"``, ``"fast"``, or None, in which case the
    ``REPRO_FIDELITY`` environment variable decides (defaulting to the
    cycle reference tier).  Environment values are stripped and
    lowercased; anything else raises — a typo in ``REPRO_FIDELITY``
    must not silently change the model under test.
    """
    from_env = False
    if kind is None:
        env = os.environ.get(FIDELITY_ENV_VAR, "").strip().lower()
        from_env = bool(env)
        kind = env or "cycle"
    if kind not in VALID_FIDELITIES:
        raise ValueError(
            "unknown fidelity {!r}{}; valid fidelity tiers: {}".format(
                kind,
                " (from the {} environment variable)".format(
                    FIDELITY_ENV_VAR) if from_env else "",
                ", ".join(VALID_FIDELITIES)))
    return kind
