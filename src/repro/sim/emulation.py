"""Silicon-corroboration emulation (Section IV-B, Figure 16).

The paper checks its simulations against a real machine two ways:

1. Simulate the "Exploit Frequency+Latency Margins" setting and compare
   with the measured real-system speedup (average difference 2%).
2. Emulate Hetero-DMR on the real machine as::

       exec_time = exec@unsafely_fast - wr_time@fast + wr_time@slow

   where ``wr_time = written_data / write_bandwidth`` — writes lose the
   margin benefit because Hetero-DMR performs them at specification,
   and write time is bandwidth- (not latency-) limited because
   writebacks are independent.

This module implements formula (2) over simulator measurements, so the
"emulated" Hetero-DMR number can be compared against the directly
simulated one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.cache import LINE_BYTES
from ..dram.timing import TimingParameters
from .node import NodeResult


@dataclass(frozen=True)
class EmulationResult:
    """Emulated Hetero-DMR execution time and its ingredients."""
    exec_fast_ns: float
    write_time_fast_ns: float
    write_time_slow_ns: float

    @property
    def emulated_exec_ns(self) -> float:
        return (self.exec_fast_ns - self.write_time_fast_ns +
                self.write_time_slow_ns)


def write_time_ns(written_bytes: float, timing: TimingParameters,
                  channels: int, efficiency: float = 0.85) -> float:
    """``wr_time = written_data / bandwidth`` with an attainable-
    bandwidth efficiency factor applied to the channel peak."""
    if written_bytes < 0:
        raise ValueError("written_bytes must be non-negative")
    bw_bytes_per_ns = timing.peak_bandwidth_gbs * channels * efficiency
    return written_bytes / bw_bytes_per_ns


def emulate_hetero_dmr(fast_run: NodeResult,
                       fast_timing: TimingParameters,
                       slow_timing: TimingParameters) -> EmulationResult:
    """Apply the paper's emulation formula to a simulated run of the
    "Exploit Freq+Lat Margins" setting.

    ``fast_run`` supplies exec time and the amount of data written to
    DRAM; the two timings supply the write bandwidths at the unsafely
    fast and specification data rates.
    """
    channels = fast_run.config.hierarchy.channels
    written = fast_run.dram_writes * LINE_BYTES
    return EmulationResult(
        exec_fast_ns=fast_run.time_ns,
        write_time_fast_ns=write_time_ns(written, fast_timing, channels),
        write_time_slow_ns=write_time_ns(written, slow_timing, channels))


def emulated_speedup(baseline_time_ns: float,
                     emulation: EmulationResult) -> float:
    """Emulated Hetero-DMR speedup over the Commercial Baseline."""
    if baseline_time_ns <= 0:
        raise ValueError("baseline time must be positive")
    return baseline_time_ns / emulation.emulated_exec_ns
