"""Node-level performance simulation, experiment orchestration, and the
silicon-corroboration emulation model."""

from .emulation import (EmulationResult, emulate_hetero_dmr,
                        emulated_speedup, write_time_ns)
from .engine import EventLoop
from .node import (ADVANCE_QUANTUM_NS, DESIGNS, NodeConfig, NodeResult,
                   NodeSimulation, simulate_node)
from .runner import (BUCKET_UTILIZATION, ExperimentRunner, MARGIN_WEIGHTS,
                     USAGE_WEIGHTS)

__all__ = ["ADVANCE_QUANTUM_NS", "BUCKET_UTILIZATION", "DESIGNS",
           "EmulationResult", "EventLoop", "ExperimentRunner",
           "MARGIN_WEIGHTS", "NodeConfig", "NodeResult", "NodeSimulation",
           "USAGE_WEIGHTS", "emulate_hetero_dmr", "emulated_speedup",
           "simulate_node", "write_time_ns"]
