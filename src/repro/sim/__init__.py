"""Node-level performance simulation, experiment orchestration, and the
silicon-corroboration emulation model."""

from .emulation import (EmulationResult, emulate_hetero_dmr,
                        emulated_speedup, write_time_ns)
from .engine import CalendarEventLoop, EventLoop, make_event_loop
from .node import (ADVANCE_QUANTUM_NS, DESIGNS, NodeConfig, NodeResult,
                   NodeSimulation, effective_design, simulate_node)
from .runner import (BUCKET_UTILIZATION, ExperimentRunner, MARGIN_WEIGHTS,
                     USAGE_WEIGHTS)

__all__ = ["ADVANCE_QUANTUM_NS", "BUCKET_UTILIZATION",
           "CalendarEventLoop", "DESIGNS", "EmulationResult", "EventLoop",
           "ExperimentRunner", "MARGIN_WEIGHTS", "NodeConfig",
           "NodeResult", "NodeSimulation", "USAGE_WEIGHTS",
           "effective_design", "emulate_hetero_dmr", "emulated_speedup",
           "make_event_loop", "simulate_node", "write_time_ns"]
