"""Single-node performance simulator (Section IV-A).

Assembles the substrates into the paper's simulated node: trace-driven
cores (Table IV), private L2s + shared L3 (Table III), stride and
next-line prefetchers, per-channel FR-FCFS memory controllers, and the
DDR4 bank/rank/channel timing model — then runs one of the four memory
designs (Commercial Baseline, FMR, Hetero-DMR, Hetero-DMR+FMR) or an
arbitrary Table II timing setting.

Scope and simplifications (documented in DESIGN.md): traces are at
L2-reference granularity; cores stall only on dependent loads and on
the outstanding-miss bound; write batches drain in 128-write chunks
with queued reads interleaving between chunks.  These preserve the
quantities the paper's figures depend on — memory-boundedness, read/write mix, row-buffer locality, rank
parallelism, and the cost of Hetero-DMR's frequency transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cache.hierarchy import (CPU_GHZ, CacheHierarchy, HierarchyConfig,
                               hierarchy1)
from ..cache.prefetcher import NextLinePrefetcher, StridePrefetcher
from ..core.config import (DUAL_COPY_UTILIZATION_LIMIT, HeteroDMRConfig,
                           REPLICATION_UTILIZATION_LIMIT)
from ..core.policies import (BaselinePolicy, FmrPolicy, HeteroDMRPolicy,
                             HeteroFmrPolicy, PlainBaselinePolicy)
from ..cpu.core import Core
from ..dram.backend import VALID_BACKENDS, MemoryBackend, get_backend
from ..dram.channel import Channel
from ..dram.module import Module, ModuleSpec
from ..dram.timing import TimingParameters
from ..mem_ctrl.address_map import AddressMapping
from ..mem_ctrl.controller import MemoryController
from ..mem_ctrl.policy import AccessPolicy
from ..obs import get_recorder
from ..workloads.base import TraceGenerator
from ..workloads.registry import get_profile
from .engine import VALID_ENGINES, EventLoop, make_event_loop
from .fidelity import (VALID_FIDELITIES, ensure_fidelity_supported,
                       resolve_fidelity)

#: Designs understood by the simulator.
DESIGNS = ("baseline", "baseline-plain", "fmr", "hetero-dmr",
           "hetero-dmr+fmr")

#: Core-side advance quantum: a core may run at most this far ahead of
#: global time before yielding to the event loop.
ADVANCE_QUANTUM_NS = 500.0


def effective_design(design: str, memory_utilization: float) -> str:
    """Resolve a configured design against memory utilization:
    replication-based designs regress to the baseline (or to plain
    Hetero-DMR) when free memory runs out (Sections III-E, IV-A).

    This mapping is the ONLY way ``memory_utilization`` influences a
    node simulation — two configs that agree on everything else and on
    the effective design produce identical results.  The experiment
    runner's cell-dedup cache relies on exactly that invariant.
    """
    if design == "hetero-dmr+fmr":
        if memory_utilization < DUAL_COPY_UTILIZATION_LIMIT:
            return "hetero-dmr+fmr"
        if memory_utilization < REPLICATION_UTILIZATION_LIMIT:
            return "hetero-dmr"
        return "baseline"
    if design in ("hetero-dmr", "fmr"):
        if memory_utilization < REPLICATION_UTILIZATION_LIMIT:
            return design
        return "baseline"
    return design


@dataclass(frozen=True)
class NodeConfig:
    """One simulation's parameters."""
    suite: str = "linpack"
    hierarchy: HierarchyConfig = field(default_factory=hierarchy1)
    design: str = "baseline"
    timing: Optional[TimingParameters] = None   # safe/spec timing override
    margin_mts: int = 800
    #: Per-channel margins (Section III-D2 heterogeneity experiments);
    #: None means every channel uses ``margin_mts``.
    channel_margins: Optional[tuple] = None
    use_latency_margin: bool = True
    memory_utilization: float = 0.30
    refs_per_core: int = 20000
    seed: int = 12345
    use_prefetchers: bool = True
    read_error_rate: float = 0.0
    #: Probability that any frequency transition fails and retries
    #: (chaos-campaign knob; 0 disables the fault model entirely).
    transition_fault_rate: float = 0.0
    mlp_limit: int = 16
    #: Event-loop implementation: "heap", "calendar", or None to defer
    #: to the ``REPRO_ENGINE`` environment variable.  Both engines
    #: produce identical results; this only selects the scheduler.
    engine: Optional[str] = None
    #: Fidelity tier: "cycle" (the trace-driven reference simulator),
    #: "fast" (the calibrated closed-form model in
    #: :mod:`repro.fastmodel`), or None to defer to the
    #: ``REPRO_FIDELITY`` environment variable.  Unlike ``engine``, the
    #: tiers produce *different* numbers — the fast tier is an
    #: approximation cross-checked on the Figure 12 grid.
    fidelity: Optional[str] = None
    #: Memory-technology backend: "ddr4", "mrdimm", or None to defer to
    #: the ``REPRO_BACKEND`` environment variable (defaulting to ddr4).
    #: The backend decides spec/fast timing profiles, rank-mux topology,
    #: and the refresh economics (see :mod:`repro.dram.backend`).
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.transition_fault_rate <= 1.0:
            raise ValueError("transition_fault_rate must be a "
                             "probability")
        if self.design not in DESIGNS:
            raise ValueError("unknown design {!r}; valid: {}".format(
                self.design, ", ".join(DESIGNS)))
        if not 0.0 <= self.memory_utilization <= 1.0:
            raise ValueError("memory_utilization must be in [0, 1]")
        if self.channel_margins is not None and \
                len(self.channel_margins) != self.hierarchy.channels:
            raise ValueError("channel_margins must have one entry per "
                             "channel")
        if self.refs_per_core <= 0:
            raise ValueError("refs_per_core must be positive")
        if self.engine is not None and self.engine not in VALID_ENGINES:
            raise ValueError("unknown engine {!r}; valid: {}".format(
                self.engine, ", ".join(VALID_ENGINES)))
        if self.fidelity is not None and \
                self.fidelity not in VALID_FIDELITIES:
            raise ValueError("unknown fidelity {!r}; valid: {}".format(
                self.fidelity, ", ".join(VALID_FIDELITIES)))
        if self.backend is not None and self.backend not in VALID_BACKENDS:
            raise ValueError("unknown backend {!r}; valid: {}".format(
                self.backend, ", ".join(VALID_BACKENDS)))
        if self.fidelity == "fast":
            # Reject unsupported knob combinations here, at config
            # construction, instead of deep inside the fast model.
            ensure_fidelity_supported(
                self.fidelity,
                knobs={"read_error_rate": self.read_error_rate,
                       "transition_fault_rate": self.transition_fault_rate,
                       "channel_margins": self.channel_margins},
                source="NodeConfig")


@dataclass
class NodeResult:
    """Aggregate outcome of one node simulation."""
    config: NodeConfig
    time_ns: float
    instructions: float
    dram_reads: int
    dram_writes: int
    dram_write_bursts: int
    cleaning_writes: int
    cleaned_rewrites: int
    write_mode_entries: int
    mean_read_latency_ns: float
    bus_utilization: float
    row_hit_rate: float
    llc_miss_rate: float
    activates: int
    refreshes: int
    transitions: int
    self_refresh_rank_ns: float
    effective_design: str
    failed_transitions: int = 0
    read_retries: int = 0
    #: Engine accounting (perf harness): events the loop processed and
    #: schedule() calls whose past-due time was clamped to now.
    events_processed: int = 0
    schedule_clamped: int = 0

    @property
    def ipc(self) -> float:
        cycles = self.time_ns * CPU_GHZ
        return self.instructions / cycles if cycles else 0.0

    @property
    def dram_accesses(self) -> int:
        return self.dram_reads + self.dram_writes

    @property
    def dram_accesses_per_instruction(self) -> float:
        return (self.dram_accesses / self.instructions
                if self.instructions else 0.0)

    @property
    def write_share(self) -> float:
        total = self.dram_reads + self.dram_writes
        return self.dram_writes / total if total else 0.0


class NodeSimulation:
    """Builds and runs one node configuration."""

    def __init__(self, config: NodeConfig):
        self.config = config
        self.engine = make_event_loop(config.engine)
        hier = config.hierarchy
        self.hierarchy = CacheHierarchy(hier)
        self.effective_design = self._effective_design()
        self.backend: MemoryBackend = get_backend(config.backend)
        spec_timing = config.timing or self.backend.spec_timing()
        self.channels = self._build_channels(spec_timing)
        # The controller addresses *logical* ranks; a multiplexed-rank
        # backend exposes rank_mux_factor x the physical ranks.
        total_ranks = hier.modules_per_channel * \
            self.backend.effective_ranks(hier.ranks_per_module)
        if self.effective_design in ("fmr", "hetero-dmr", "hetero-dmr+fmr"):
            # Replication-active designs compact used pages into half
            # the modules (PASR-style freeing, Section III-E), so
            # demand addresses interleave over the in-use module's
            # ranks; the other module holds the replicas.
            total_ranks //= 2
        self.mapping = AddressMapping(
            channels=hier.channels, ranks_per_channel=total_ranks)
        self.policies = [self._make_policy(i)
                         for i in range(len(self.channels))]
        self.memctl = MemoryController(
            self.engine, self.channels, self.mapping,
            policy_factory=lambda i: self.policies[i])
        self._start_fast_designs()
        self.cores = [
            Core(i, TraceGenerator(get_profile(config.suite), i,
                                   config.seed).records(config.refs_per_core),
                 cpu_ghz=CPU_GHZ, mlp_limit=config.mlp_limit)
            for i in range(hier.cores)]
        if config.use_prefetchers:
            self.stride_pf = [StridePrefetcher(degree=4)
                              for _ in self.cores]
            self.nextline_pf = [NextLinePrefetcher() for _ in self.cores]
        else:
            self.stride_pf = self.nextline_pf = None
        self._prefetch_outstanding = [0] * len(self.cores)
        self._cores_done = 0
        self._finished = False
        self._warm_caches()

    def _warm_caches(self) -> None:
        """Pre-fill the caches to steady-state occupancy.

        The paper warms caches with 15 ms of atomic simulation before
        measuring; here the LLC (and L2s) are filled with
        footprint-resident lines, dirty with the workload's store
        probability, so eviction/writeback traffic is in steady state
        from the first measured reference.
        """
        import random as _random
        prof = get_profile(self.config.suite)
        rng = _random.Random(self.config.seed ^ 0x5EED)
        lines_total = prof.footprint_bytes // 64
        l3 = self.hierarchy.l3
        dirty_prob = prof.write_fraction
        if self.effective_design in ("hetero-dmr", "hetero-dmr+fmr"):
            # Hetero-DMR's proactive cleaning keeps the steady-state
            # LLC essentially clean (Section III-E): the measured
            # window starts as if a cleaning batch just completed, so
            # in-window cleaning covers only lines dirtied in-window —
            # the same write volume the baseline's evictions carry.
            dirty_prob = 0.0
        l3.warm(rng, dirty_prob=dirty_prob, max_line=lines_total)
        for l2 in self.hierarchy.l2s:
            l2.warm(rng, dirty_prob=prof.write_fraction,
                    max_line=lines_total)

    # -- construction ----------------------------------------------------------------

    def _effective_design(self) -> str:
        return effective_design(self.config.design,
                                self.config.memory_utilization)

    def _channel_margin(self, channel_index: int) -> int:
        if self.config.channel_margins is not None:
            return self.config.channel_margins[channel_index]
        return self.config.margin_mts

    def _build_channels(self, spec_timing: TimingParameters) -> List[Channel]:
        hier = self.config.hierarchy
        channels = []
        backend = self.backend
        spec = ModuleSpec(
            spec_data_rate_mts=backend.spec_data_rate_mts,
            ranks_per_module=backend.effective_ranks(hier.ranks_per_module))
        for c in range(hier.channels):
            margin = self._channel_margin(c)
            modules = [Module(spec, "C{}M{}".format(c, m),
                              true_margin_mts=margin)
                       for m in range(hier.modules_per_channel)]
            channel = Channel(
                index=c, modules=modules, safe_timing=spec_timing,
                fast_timing=backend.fast_timing(
                    margin, self.config.use_latency_margin),
                backend=backend)
            if self.config.transition_fault_rate > 0.0:
                channel.frequency.seed_faults(
                    self.config.seed + 7919 * c,
                    self.config.transition_fault_rate)
            channels.append(channel)
        return channels

    def _make_policy(self, channel_index: int) -> AccessPolicy:
        cfg = self.config
        hdmr_cfg = HeteroDMRConfig(
            margin_mts=self._channel_margin(channel_index),
            use_latency_margin=cfg.use_latency_margin,
            read_error_rate=cfg.read_error_rate)
        design = self.effective_design
        if design == "baseline":
            return BaselinePolicy()
        if design == "baseline-plain":
            return PlainBaselinePolicy()
        if design == "fmr":
            return FmrPolicy()
        if design == "hetero-dmr":
            return HeteroDMRPolicy(hdmr_cfg,
                                   llc_clean_hook=self._clean_llc)
        if design == "hetero-dmr+fmr":
            return HeteroFmrPolicy(hdmr_cfg,
                                   llc_clean_hook=self._clean_llc)
        raise ValueError(design)

    def _start_fast_designs(self) -> None:
        """Hetero-DMR channels boot replicated and in fast read mode."""
        if self.effective_design not in ("hetero-dmr", "hetero-dmr+fmr"):
            return
        for channel, policy in zip(self.channels, self.policies):
            free_idx = policy.free_module_index
            channel.modules[free_idx].holds_copies = True
            channel.modules[free_idx].is_free = True
            channel.to_fast(0.0)

    def _clean_llc(self, limit: int) -> List[int]:
        """Hetero-DMR write-mode hook: clean dirty-LRU LLC lines."""
        addrs = self.hierarchy.llc_dirty_lru(limit)
        return self.hierarchy.llc_clean(addrs)

    # -- execution --------------------------------------------------------------------

    def run(self) -> NodeResult:
        for core in self.cores:
            self._schedule_advance(core)
        last_processed = -1
        while not self._finished:
            if not self.engine.pending:
                raise RuntimeError("simulation deadlocked: no events "
                                   "pending but cores unfinished")
            self.engine.run(max_events=1_000_000)
            if self.engine.events_processed == last_processed:
                raise RuntimeError("simulation made no progress")
            last_processed = self.engine.events_processed
        # Silence the periodic refresh so the final drain terminates.
        for ctrl in self.memctl.controllers:
            ctrl.stop()
        self.engine.run()
        return self._collect()

    def _schedule_advance(self, core: Core) -> None:
        self.engine.schedule(core.time_ns, lambda: self._advance(core))

    def _advance(self, core: Core) -> None:
        """Run one core until it blocks, finishes, or out-runs global
        time by the quantum."""
        while True:
            if core.time_ns > self.engine.now + ADVANCE_QUANTUM_NS:
                self._schedule_advance(core)
                return
            if not core.runnable:
                return
            rec = core.next_record()
            if rec is None:
                self._core_finished(core)
                return
            core.time_ns += rec.gap_cycles / core.cpu_ghz
            if not core.can_issue(rec):
                core.block(rec)
                return
            self._issue(core, rec)

    def _issue(self, core: Core, rec) -> None:
        outcome = self.hierarchy.access(core.core_id, rec.address,
                                        rec.is_write)
        now = core.time_ns
        for wb in outcome.writebacks:
            self.memctl.submit_write(wb, now)
        if outcome.memory_read is None:
            # On-chip hit: dependent accesses see the full latency, the
            # OoO window hides it otherwise.
            if rec.dependent:
                core.time_ns += outcome.latency_cycles / core.cpu_ghz
            else:
                core.time_ns += 1.0 / core.cpu_ghz
            return
        core.outstanding += 1
        core.stats.misses_issued += 1
        line = outcome.memory_read
        is_write = rec.is_write
        self.engine.schedule(now, lambda: self.memctl.submit_read(
            line, max(now, self.engine.now),
            lambda finish: self._miss_done(core, line, is_write, finish),
            core.core_id))
        self._maybe_prefetch(core, rec.address)

    def _miss_done(self, core: Core, line: int, is_write: bool,
                   finish_ns: float) -> None:
        for wb in self.hierarchy.fill(core.core_id, line, is_write):
            self.memctl.submit_write(wb, finish_ns)
        core.miss_returned(finish_ns)
        if core.done and core.pending is None and core.outstanding == 0:
            self._core_finished(core)
            return
        self._schedule_advance(core)

    # -- prefetching --------------------------------------------------------------------

    def _maybe_prefetch(self, core: Core, address: int) -> None:
        if self.stride_pf is None:
            return
        cid = core.core_id
        targets = list(self.stride_pf[cid].observe(address))
        targets += self.nextline_pf[cid].observe(address, was_hit=False)
        for target in targets:
            if self._prefetch_outstanding[cid] >= 8:
                break
            line = self.hierarchy.l3.line_address(target)
            if self.hierarchy.l3.contains(line):
                self.stride_pf[cid].credit_useful()
                continue
            self._prefetch_outstanding[cid] += 1
            now = core.time_ns
            self.engine.schedule(now, lambda l=line: self.memctl.submit_read(
                l, max(now, self.engine.now),
                lambda finish, l=l: self._prefetch_done(cid, l, finish),
                cid, is_prefetch=True))

    def _prefetch_done(self, core_id: int, line: int,
                       finish_ns) -> None:
        self._prefetch_outstanding[core_id] -= 1
        if finish_ns is None:
            return   # shed by the controller under pressure
        for wb in self.hierarchy.fill_prefetch(line):
            self.memctl.submit_write(wb, self.engine.now)

    # -- completion --------------------------------------------------------------------

    def _core_finished(self, core: Core) -> None:
        if core.stats.finish_ns:
            return
        core.stats.finish_ns = max(core.time_ns, self.engine.now)
        self._cores_done += 1
        if self._cores_done == len(self.cores):
            self.memctl.drain()
            self._finished = True
            self.engine.stop()

    def _collect(self) -> NodeResult:
        time_ns = max(c.stats.finish_ns for c in self.cores)
        instructions = sum(c.stats.instructions for c in self.cores)
        reads = writes = bursts = cleaning = entries = refreshes = 0
        lat_total = 0.0
        lat_count = 0
        activates = hits = misses = conflicts = 0
        bus_busy = 0.0
        transitions = 0
        failed_transitions = 0
        read_retries = 0
        self_refresh_ns = 0.0
        for ctrl in self.memctl.controllers:
            s = ctrl.stats
            reads += s.reads_issued
            read_retries += s.read_retries
            writes += s.writes_issued
            bursts += s.write_bursts
            cleaning += s.cleaning_writes
            entries += s.write_mode_entries
            refreshes += s.refreshes
            lat_total += s.read_latency_total_ns
            lat_count += s.read_latency_count
        for channel in self.channels:
            bus_busy += channel.stats.bus_busy_ns
            transitions += (channel.frequency.transitions_to_fast +
                            channel.frequency.transitions_to_safe)
            failed_transitions += channel.frequency.failed_transitions
            for module in channel.modules:
                for rank in module.ranks:
                    for bank in rank.banks:
                        activates += bank.stats.activates
                        hits += bank.stats.row_hits
                        misses += bank.stats.row_misses
                        conflicts += bank.stats.row_conflicts
                    if rank.in_self_refresh:
                        self_refresh_ns += time_ns - rank.self_refresh_since_ns
        nchan = len(self.channels)
        total_bank_accesses = hits + misses + conflicts
        rec = get_recorder()
        if rec.enabled:
            labels = {"suite": self.config.suite,
                      "design": self.effective_design}
            rec.counter("sim", "dram_reads", reads, **labels)
            rec.counter("sim", "dram_writes", writes, **labels)
            rec.counter("sim", "frequency_transitions", transitions,
                        **labels)
            rec.counter("sim", "write_mode_entries", entries, **labels)
            rec.gauge("sim", "row_hit_rate",
                      hits / total_bank_accesses
                      if total_bank_accesses else 0.0, **labels)
            rec.gauge("sim", "bus_utilization",
                      bus_busy / (time_ns * nchan) if time_ns else 0.0,
                      **labels)
            rec.gauge("sim", "events_processed",
                      self.engine.events_processed, **labels)
            rec.gauge("sim", "schedule_clamped",
                      self.engine.schedule_clamped, **labels)
        return NodeResult(
            config=self.config,
            time_ns=time_ns,
            instructions=instructions,
            dram_reads=reads,
            dram_writes=writes,
            dram_write_bursts=bursts,
            cleaning_writes=cleaning,
            cleaned_rewrites=self.hierarchy.l3.stats.cleaned_rewrites,
            write_mode_entries=entries,
            mean_read_latency_ns=lat_total / lat_count if lat_count else 0.0,
            bus_utilization=bus_busy / (time_ns * nchan) if time_ns else 0.0,
            row_hit_rate=hits / total_bank_accesses
            if total_bank_accesses else 0.0,
            llc_miss_rate=self.hierarchy.l3.stats.miss_rate,
            activates=activates,
            refreshes=refreshes,
            transitions=transitions,
            self_refresh_rank_ns=self_refresh_ns,
            effective_design=self.effective_design,
            failed_transitions=failed_transitions,
            read_retries=read_retries,
            events_processed=self.engine.events_processed,
            schedule_clamped=self.engine.schedule_clamped,
        )


def simulate_node(config: NodeConfig) -> NodeResult:
    """Simulate one node at the configured fidelity tier.

    ``fidelity="cycle"`` (or unset, with ``REPRO_FIDELITY`` empty) runs
    the trace-driven cycle simulator; ``"fast"`` evaluates the
    calibrated closed-form model instead, which needs the committed
    calibration artifact (see :mod:`repro.fastmodel`).
    """
    if resolve_fidelity(config.fidelity) == "fast":
        from ..fastmodel import simulate_node_fast
        return simulate_node_fast(config)
    return NodeSimulation(config).run()
