"""Experiment orchestration for the evaluation figures.

Maps each of the paper's evaluation experiments onto node simulations
and composes them with the paper's weighting rules:

* Figure 5:  the four Table II settings x six suites x two hierarchies
  (baseline design, timing override).
* Figure 12: {FMR, Hetero-DMR, Hetero-DMR+FMR} x usage buckets
  {[0,25), [25,50), [50,100]} x margins {0.8, 0.6 GT/s} x hierarchies,
  normalized to the Commercial Baseline; the "[0~100%]" bar weights
  buckets by the Figure 1 job fractions, and the headline numbers
  weight margins by the node-group fractions (62% / 36%).
* Figures 13-15 reuse the same runs (energy, traffic, bandwidth).

Simulations are cached per configuration key, so a bench that asks for
several views of the same cell pays for one simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.stats import suite_average, weighted_mean
from ..cache.hierarchy import HIERARCHIES, HierarchyConfig
from ..core.margin_selection import NODE_GROUP_FRACTIONS
from ..dram.backend import resolve_backend
from ..dram.timing import TABLE2_SETTINGS, TimingParameters
from ..hpc.traces import MEMORY_BUCKET_FRACTIONS
from ..workloads.registry import suite_names
from .fidelity import ensure_fidelity_supported
from .node import NodeConfig, NodeResult, effective_design, simulate_node

#: Effective designs that never leave specification timing: the margin
#: and fault knobs below are inert for them, so cells differing only in
#: those knobs share one simulation.
_SPEC_ONLY_DESIGNS = ("baseline", "baseline-plain", "fmr")

#: Node-margin weights for the headline numbers: the Section III-D2
#: group fractions restricted to margin-bearing nodes.  Derived from
#: ``core.margin_selection.NODE_GROUP_FRACTIONS`` so the 62/36 split
#: lives in exactly one place (shared with ``hpc.cluster``).
MARGIN_WEIGHTS = {margin: fraction for margin, fraction
                  in NODE_GROUP_FRACTIONS.items() if margin > 0}

#: Figure 1 usage-bucket weights used for the "[0~100%]" bars.
USAGE_WEIGHTS = {
    "0-25": MEMORY_BUCKET_FRACTIONS["under_25"],
    "25-50": MEMORY_BUCKET_FRACTIONS["25_to_50"],
    "50-100": MEMORY_BUCKET_FRACTIONS["over_50"],
}

#: Representative utilization per bucket fed to the simulator.
BUCKET_UTILIZATION = {"0-25": 0.15, "25-50": 0.35, "50-100": 0.75}


@dataclass
class ExperimentRunner:
    """Runs and caches node simulations for one trace length/seed.

    ``fidelity`` selects the model tier per
    :func:`repro.sim.fidelity.resolve_fidelity` (None defers to
    ``REPRO_FIDELITY``); the cache is per-runner, so one runner never
    mixes tiers.
    """
    refs_per_core: int = 5000
    seed: int = 12345
    fidelity: Optional[str] = None
    #: Memory-technology backend (None defers to ``REPRO_BACKEND``).
    backend: Optional[str] = None
    _cache: Dict[tuple, NodeResult] = field(default_factory=dict)

    # -- primitives ---------------------------------------------------------------

    def run(self, suite: str, hierarchy: HierarchyConfig,
            design: str = "baseline",
            timing: Optional[TimingParameters] = None,
            margin_mts: int = 800,
            memory_utilization: float = 0.15,
            use_latency_margin: bool = True,
            read_error_rate: float = 0.0,
            transition_fault_rate: float = 0.0) -> NodeResult:
        """Simulate one cell (cached).

        ``use_latency_margin``, ``read_error_rate``, and
        ``transition_fault_rate`` parameterize degradation-ladder and
        chaos-campaign cells; the figure benches leave them at their
        defaults.

        The cache key is *normalized to the effective cell*: utilization
        only selects the effective design (see
        :func:`repro.sim.node.effective_design`), and for effective
        designs that never leave specification timing the margin and
        fault knobs cannot influence the outcome, so such cells
        deduplicate onto one simulation.  On the Figure 12 grid this
        cuts the number of distinct simulations by ~2.7x."""
        # Validate the fidelity/knob combination BEFORE the cache
        # lookup: a hit on a knob-normalized key must not bypass the
        # fast tier's fault-injection refusal.
        ensure_fidelity_supported(
            self.fidelity,
            knobs={"read_error_rate": read_error_rate,
                   "transition_fault_rate": transition_fault_rate},
            source="ExperimentRunner.run")
        backend = resolve_backend(self.backend)
        eff = effective_design(design, memory_utilization)
        if eff in _SPEC_ONLY_DESIGNS:
            key = (suite, hierarchy.name, eff, backend,
                   timing.data_rate_mts if timing else None,
                   timing.tRCD_ns if timing else None,
                   None, None, None, None)
        else:
            key = (suite, hierarchy.name, eff, backend,
                   timing.data_rate_mts if timing else None,
                   timing.tRCD_ns if timing else None,
                   margin_mts, use_latency_margin,
                   read_error_rate, transition_fault_rate)
        if key not in self._cache:
            self._cache[key] = simulate_node(NodeConfig(
                suite=suite, hierarchy=hierarchy, design=design,
                timing=timing, margin_mts=margin_mts,
                memory_utilization=memory_utilization,
                use_latency_margin=use_latency_margin,
                read_error_rate=read_error_rate,
                transition_fault_rate=transition_fault_rate,
                refs_per_core=self.refs_per_core, seed=self.seed,
                fidelity=self.fidelity, backend=backend))
        return self._cache[key]

    def baseline(self, suite: str,
                 hierarchy: HierarchyConfig) -> NodeResult:
        return self.run(suite, hierarchy, "baseline")

    # -- Figure 5 -------------------------------------------------------------------

    def table2_speedups(self, hierarchy: HierarchyConfig
                        ) -> Dict[str, Dict[str, float]]:
        """Per-setting, per-suite speedup over the manufacturer
        setting (Figure 5)."""
        spec_name = "Manufacturer-specified Setting"
        out: Dict[str, Dict[str, float]] = {}
        spec_times = {
            s: self.run(s, hierarchy, timing=TABLE2_SETTINGS[spec_name])
            .time_ns for s in suite_names()}
        for name, timing in TABLE2_SETTINGS.items():
            per_suite = {}
            for s in suite_names():
                r = self.run(s, hierarchy, timing=timing)
                per_suite[s] = spec_times[s] / r.time_ns
            out[name] = per_suite
        return out

    # -- Figure 12 ---------------------------------------------------------------------

    def design_speedup(self, suite: str, hierarchy: HierarchyConfig,
                       design: str, margin_mts: int,
                       bucket: str) -> float:
        """Normalized performance of one design cell vs the baseline."""
        base = self.baseline(suite, hierarchy)
        util = BUCKET_UTILIZATION[bucket]
        r = self.run(suite, hierarchy, design, margin_mts=margin_mts,
                     memory_utilization=util)
        return base.time_ns / r.time_ns

    def fig12_cell(self, hierarchy: HierarchyConfig, design: str,
                   margin_mts: int, bucket: str) -> float:
        """Suite-equal average normalized performance of one bar."""
        return suite_average({
            s: self.design_speedup(s, hierarchy, design, margin_mts,
                                   bucket)
            for s in suite_names()})

    def fig12_weighted(self, hierarchy: HierarchyConfig, design: str,
                       margin_mts: int) -> float:
        """The "[0~100%]" bar: buckets weighted by Figure 1."""
        values, weights = [], []
        for bucket, w in USAGE_WEIGHTS.items():
            values.append(self.fig12_cell(hierarchy, design, margin_mts,
                                          bucket))
            weights.append(w)
        return weighted_mean(values, weights)

    def headline_speedup(self, design: str,
                         hierarchies: Optional[List[HierarchyConfig]]
                         = None) -> float:
        """The paper's headline number: weighted over usage buckets,
        margins (62/36), and averaged over hierarchies."""
        hierarchies = hierarchies or [f() for f in HIERARCHIES.values()]
        per_hier = []
        for hier in hierarchies:
            values, weights = [], []
            for margin, w in MARGIN_WEIGHTS.items():
                values.append(self.fig12_weighted(hier, design, margin))
                weights.append(w)
            per_hier.append(weighted_mean(values, weights))
        return sum(per_hier) / len(per_hier)
