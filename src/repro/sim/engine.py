"""Minimal discrete-event engine.

Time is a float in nanoseconds.  Events are callbacks ordered by
(time, sequence); the sequence number makes simultaneous events FIFO
and keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class EventLoop:
    """A deterministic event queue."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0
        self._stop = False

    def stop(self) -> None:
        """Ask :meth:`run` to return after the current event."""
        self._stop = True

    def schedule(self, time_ns: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at ``time_ns`` (clamped to now)."""
        if time_ns < self.now:
            time_ns = self.now
        heapq.heappush(self._queue, (time_ns, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay_ns: float,
                    callback: Callable[[], None]) -> None:
        """Schedule relative to the current time."""
        self.schedule(self.now + max(0.0, delay_ns), callback)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def run(self, until_ns: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Process events until the queue drains (or a bound is hit)."""
        processed = 0
        self._stop = False
        while self._queue:
            if self._stop:
                break
            if max_events is not None and processed >= max_events:
                break
            time_ns, _, callback = self._queue[0]
            if until_ns is not None and time_ns > until_ns:
                break
            heapq.heappop(self._queue)
            self.now = time_ns
            callback()
            processed += 1
        self.events_processed += processed
