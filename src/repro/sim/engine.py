"""Minimal discrete-event engine.

Time is a float in nanoseconds.  Events are callbacks ordered by
(time, sequence); the sequence number makes simultaneous events FIFO
and keeps runs deterministic.

Two interchangeable scheduler implementations are provided:

* :class:`EventLoop` — a binary heap (``heapq``), the reference
  implementation whose event order defines correctness, and
* :class:`CalendarEventLoop` — a calendar queue [Brown88]: events are
  bucketed by ``int(time / bucket_width)``, so most operations touch a
  small per-bucket heap instead of the global one.  It produces the
  *identical* event order (asserted by the equivalence tests), because
  the bucket index is monotone in time and ties are still broken by
  sequence number within a bucket.

:func:`make_event_loop` selects between them, honouring the
``REPRO_ENGINE`` environment variable (``heap`` | ``calendar``).
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, List, Optional, Tuple

from ..obs import get_recorder

#: Environment variable consulted by :func:`make_event_loop` when no
#: explicit engine kind is passed.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Engine kinds :func:`make_event_loop` understands.
VALID_ENGINES = ("heap", "calendar")


class EventLoop:
    """A deterministic event queue (binary-heap reference engine)."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0
        #: Number of schedule() calls whose requested time was in the
        #: past and was clamped forward to ``now``.  A high count means
        #: a component is computing stale timestamps.
        self.schedule_clamped = 0
        self._stop = False

    def stop(self) -> None:
        """Ask :meth:`run` to return after the current event."""
        self._stop = True

    def schedule(self, time_ns: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at ``time_ns`` (clamped to now)."""
        if time_ns < self.now:
            time_ns = self.now
            self.schedule_clamped += 1
        heapq.heappush(self._queue, (time_ns, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay_ns: float,
                    callback: Callable[[], None]) -> None:
        """Schedule relative to the current time."""
        self.schedule(self.now + max(0.0, delay_ns), callback)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def run(self, until_ns: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Process events until the queue drains (or a bound is hit)."""
        processed = 0
        self._stop = False
        queue = self._queue
        pop = heapq.heappop
        # Hot loop: the queue, the pop, and the bound checks are all
        # locals; each event is popped exactly once (no peek-then-pop
        # double touch) unless an ``until_ns`` bound forces a peek of
        # the head timestamp.
        if until_ns is None:
            while queue:
                if self._stop:
                    break
                if max_events is not None and processed >= max_events:
                    break
                time_ns, _, callback = pop(queue)
                self.now = time_ns
                callback()
                processed += 1
        else:
            while queue:
                if self._stop:
                    break
                if max_events is not None and processed >= max_events:
                    break
                if queue[0][0] > until_ns:
                    break
                time_ns, _, callback = pop(queue)
                self.now = time_ns
                callback()
                processed += 1
        self.events_processed += processed
        # One recorder touch per run() call, never per event — the
        # NullRecorder default keeps the hot loop untouched.
        if processed:
            rec = get_recorder()
            if rec.enabled:
                rec.counter("engine", "events_processed", processed,
                            kind="heap")


class CalendarEventLoop(EventLoop):
    """Calendar-queue scheduler: same contract and event order as
    :class:`EventLoop`.

    Events are hashed into ``nbuckets`` buckets by virtual bucket index
    ``vb = int(time / bucket_width_ns)``; the "year" window
    ``[cur_vb, cur_vb + nbuckets)`` maps each in-window ``vb`` to a
    distinct bucket, and events beyond the window wait in an overflow
    heap.  Because ``vb`` is monotone in time, draining buckets in
    ``vb`` order and heap-ordering within a bucket reproduces the
    global ``(time, seq)`` order exactly.

    Only the *active* bucket is kept heapified; future buckets collect
    events unsorted and are heapified once, when they become active.
    """

    def __init__(self, bucket_width_ns: float = 64.0,
                 nbuckets: int = 512) -> None:
        super().__init__()
        if bucket_width_ns <= 0.0:
            raise ValueError("bucket_width_ns must be positive")
        if nbuckets <= 1:
            raise ValueError("nbuckets must be at least 2")
        self.bucket_width_ns = bucket_width_ns
        self.nbuckets = nbuckets
        self._buckets: List[List[Tuple[float, int, Callable[[], None]]]] = [
            [] for _ in range(nbuckets)]
        self._sorted = [True] * nbuckets
        self._overflow: List[Tuple[float, int, Callable[[], None]]] = []
        self._cur_vb = 0
        self._count = 0

    # -- scheduling ------------------------------------------------------------

    def schedule(self, time_ns: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at ``time_ns`` (clamped to now)."""
        if time_ns < self.now:
            time_ns = self.now
            self.schedule_clamped += 1
        entry = (time_ns, self._seq, callback)
        self._seq += 1
        self._count += 1
        vb = int(time_ns / self.bucket_width_ns)
        cur = self._cur_vb
        if vb < cur:
            # now is clamped, but now's own bucket may trail cur after
            # an advance; active bucket keeps order via its heap.
            vb = cur
        if vb == cur:
            heapq.heappush(self._buckets[cur % self.nbuckets], entry)
        elif vb < cur + self.nbuckets:
            idx = vb % self.nbuckets
            self._buckets[idx].append(entry)
            self._sorted[idx] = False
        else:
            heapq.heappush(self._overflow, entry)

    @property
    def pending(self) -> int:
        return self._count

    # -- draining --------------------------------------------------------------

    def _drain_overflow(self) -> None:
        """Move overflow events that now fall inside the year window
        into their buckets (called whenever ``_cur_vb`` advances)."""
        overflow = self._overflow
        width = self.bucket_width_ns
        horizon = (self._cur_vb + self.nbuckets) * width
        while overflow and overflow[0][0] < horizon:
            entry = heapq.heappop(overflow)
            vb = int(entry[0] / width)
            if vb <= self._cur_vb:
                heapq.heappush(
                    self._buckets[self._cur_vb % self.nbuckets], entry)
            else:
                idx = vb % self.nbuckets
                self._buckets[idx].append(entry)
                self._sorted[idx] = False

    def _advance(self) -> List[Tuple[float, int, Callable[[], None]]]:
        """Advance to the next non-empty bucket; returns it heapified.
        Caller guarantees at least one event is pending."""
        buckets = self._buckets
        nbuckets = self.nbuckets
        in_buckets = self._count - len(self._overflow)
        if in_buckets == 0:
            # Jump straight to the earliest overflow event's year.
            self._cur_vb = int(self._overflow[0][0] / self.bucket_width_ns)
            self._drain_overflow()
        while True:
            bucket = buckets[self._cur_vb % nbuckets]
            if bucket:
                idx = self._cur_vb % nbuckets
                if not self._sorted[idx]:
                    heapq.heapify(bucket)
                    self._sorted[idx] = True
                return bucket
            self._cur_vb += 1
            if self._overflow:
                self._drain_overflow()

    def run(self, until_ns: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Process events until the queue drains (or a bound is hit)."""
        processed = 0
        self._stop = False
        pop = heapq.heappop
        nbuckets = self.nbuckets
        while self._count:
            if self._stop:
                break
            if max_events is not None and processed >= max_events:
                break
            bucket = self._buckets[self._cur_vb % nbuckets]
            if not bucket:
                bucket = self._advance()
            if until_ns is not None and bucket[0][0] > until_ns:
                break
            time_ns, _, callback = pop(bucket)
            self._count -= 1
            self.now = time_ns
            callback()
            processed += 1
        self.events_processed += processed
        if processed:
            rec = get_recorder()
            if rec.enabled:
                rec.counter("engine", "events_processed", processed,
                            kind="calendar")


def make_event_loop(kind: Optional[str] = None) -> EventLoop:
    """Build an event loop of the requested kind.

    ``kind`` may be ``"heap"``, ``"calendar"``, or None, in which case
    the ``REPRO_ENGINE`` environment variable decides (defaulting to
    the heap reference engine).  Environment values are stripped and
    lowercased; anything else raises — a typo in ``REPRO_ENGINE`` must
    not silently change the engine under test.
    """
    from_env = False
    if kind is None:
        env = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
        from_env = bool(env)
        kind = env or "heap"
    if kind == "heap":
        return EventLoop()
    if kind == "calendar":
        return CalendarEventLoop()
    raise ValueError(
        "unknown engine kind {!r}{}; valid engines: {}".format(
            kind,
            " (from the {} environment variable)".format(ENGINE_ENV_VAR)
            if from_env else "",
            ", ".join(VALID_ENGINES)))
