"""Error-pattern models for out-of-spec memory operation (Section III).

When memory runs faster than specification, "many kinds of errors
could happen (e.g., full block errors due to IO errors or losing all
blocks due to misinterpreting a command as a DRAM reset command)".
These functions produce corrupted 72-byte stored-block images from a
clean one; the reliability tests drive them through the Hetero-DMR
datapath to check that NO pattern — however wide — ever propagates to
the consumer.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence

STORED_BYTES = 72


def _check(raw: Sequence[int]) -> List[int]:
    if len(raw) != STORED_BYTES:
        raise ValueError("stored block must be 72 bytes")
    return list(raw)


def single_bit_flip(raw: Sequence[int], rng: random.Random) -> List[int]:
    """Classic single-bit upset anywhere in the stored block."""
    out = _check(raw)
    pos = rng.randrange(STORED_BYTES)
    out[pos] ^= 1 << rng.randrange(8)
    return out


def multi_byte_burst(raw: Sequence[int], rng: random.Random,
                     max_bytes: int = 8) -> List[int]:
    """A contiguous burst of up to ``max_bytes`` corrupted bytes — the
    signature of a single-pin or single-chip timing failure."""
    out = _check(raw)
    length = rng.randrange(1, max_bytes + 1)
    start = rng.randrange(STORED_BYTES - length + 1)
    for i in range(start, start + length):
        out[i] ^= rng.randrange(1, 256)
    return out


def chip_failure(raw: Sequence[int], rng: random.Random) -> List[int]:
    """All bytes contributed by one x8 chip go bad (every 9th byte in
    the canonical Bamboo layout)."""
    out = _check(raw)
    chip = rng.randrange(9)
    for i in range(chip, STORED_BYTES, 9):
        out[i] ^= rng.randrange(1, 256)
    return out


def full_block_error(raw: Sequence[int], rng: random.Random) -> List[int]:
    """An I/O error replaces the whole block (an 8B+ error)."""
    return [rng.randrange(256) for _ in range(STORED_BYTES)]


def stuck_at_zero(raw: Sequence[int], rng: random.Random) -> List[int]:
    """The block reads back all-zero (e.g., a misinterpreted command
    reset the device).  Note an all-zero *message* is still a valid
    codeword of a linear code, but the constant-plus-address prefix
    folded into the ECC makes a zeroed stored block detectable at
    every address — including address 0, whose address bytes alone
    would vanish (``repro.ecc.bamboo.FORMAT_TAG``)."""
    return [0] * STORED_BYTES


def row_corruption(raw: Sequence[int], rng: random.Random) -> List[int]:
    """Aggressive-precharge-style corruption: a wide smear across the
    block (prior work reports tRP violations can corrupt entire rows)."""
    out = _check(raw)
    for i in range(STORED_BYTES):
        if rng.random() < 0.5:
            out[i] ^= rng.randrange(1, 256)
    return out


#: All patterns, keyed by name — the fault-injection tests sweep these.
ERROR_PATTERNS: Dict[str, Callable[[Sequence[int], random.Random],
                                   List[int]]] = {
    "single_bit_flip": single_bit_flip,
    "multi_byte_burst": multi_byte_burst,
    "chip_failure": chip_failure,
    "full_block_error": full_block_error,
    "stuck_at_zero": stuck_at_zero,
    "row_corruption": row_corruption,
}
