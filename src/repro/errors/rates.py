"""Error-rate bookkeeping for margin-exploiting operation (Fig. 6).

Converts the per-module CE/UE rates of the characterization into
per-access probabilities and scenario multipliers:

* 45 C ambient: 4x the 23 C rates (2x under freq+lat margins),
* full population (two modules per channel): each module accessed half
  as often, so per-module error rates halve (Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..characterization.modules import SyntheticModule
from ..characterization.temperature import error_rate_multiplier

#: Accesses per hour assumed by the stress test when converting hourly
#: error counts into per-access probabilities (order-of-magnitude of a
#: saturated DDR4-3200 channel: ~50e9 lines/hour x fraction exercised).
ACCESSES_PER_HOUR = 5.0e11

#: Per-module rate multiplier when every channel slot is populated.
FULL_POPULATION_MULTIPLIER = 0.5


@dataclass(frozen=True)
class ErrorScenario:
    """Operating conditions for an error-rate query."""
    ambient_c: float = 23.0
    with_latency_margin: bool = False
    fully_populated: bool = False

    def multiplier(self) -> float:
        mult = error_rate_multiplier(self.ambient_c,
                                     self.with_latency_margin)
        if self.with_latency_margin:
            mult *= 1.6   # freq+lat margins raise the 23 C base rate
        if self.fully_populated:
            mult *= FULL_POPULATION_MULTIPLIER
        return mult


def errors_per_hour(module: SyntheticModule,
                    scenario: ErrorScenario) -> "tuple[float, float]":
    """(CE, UE) rates per hour for a module under a scenario."""
    mult = scenario.multiplier()
    return (module.ce_rate_per_hour * mult,
            module.ue_rate_per_hour * mult)


def per_access_error_probability(module: SyntheticModule,
                                 scenario: ErrorScenario) -> float:
    """Total per-access error probability, the quantity Hetero-DMR's
    epoch guard budgets against.  Even the worst modules stay far
    below the paper's <0.001% of accesses."""
    ce, ue = errors_per_hour(module, scenario)
    return (ce + ue) / ACCESSES_PER_HOUR


def population_error_summary(modules: Sequence[SyntheticModule],
                             scenario: ErrorScenario
                             ) -> "dict[str, float]":
    """Aggregate CE/UE statistics across a module population."""
    ces, ues = [], []
    for m in modules:
        ce, ue = errors_per_hour(m, scenario)
        ces.append(ce)
        ues.append(ue)
    n = max(1, len(modules))
    return {
        "mean_ce_per_hour": sum(ces) / n,
        "mean_ue_per_hour": sum(ues) / n,
        "zero_error_fraction": sum(
            1 for c, u in zip(ces, ues) if c == 0 and u == 0) / n,
        "max_ce_per_hour": max(ces) if ces else 0.0,
    }
