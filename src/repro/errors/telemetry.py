"""RAS telemetry: EDAC-style error accounting for margin-exploiting
systems.

Production HPC fleets decide whether margin exploitation is safe from
their error telemetry (the paper's Figure 6 is exactly such telemetry,
gathered offline).  This module provides the runtime half: per-module
CE/UE counters with rate windows, a fleet-level roll-up, and a simple
advisor that recommends demoting a module's margin when its corrected-
error rate exceeds a threshold — the operational complement to the
epoch guard (which bounds SDC risk, not CE noise).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

NS_PER_HOUR = 3_600_000_000_000.0


@dataclass
class ErrorRecord:
    """One logged memory error."""
    time_ns: float
    module_id: str
    address: int
    corrected: bool


class ModuleErrorLog:
    """Sliding-window CE/UE counters for one module."""

    def __init__(self, module_id: str,
                 window_ns: float = NS_PER_HOUR):
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self.module_id = module_id
        self.window_ns = window_ns
        self._events: Deque[ErrorRecord] = deque()
        self.total_ce = 0
        self.total_ue = 0

    def record(self, time_ns: float, address: int,
               corrected: bool) -> None:
        self._events.append(ErrorRecord(time_ns, self.module_id,
                                        address, corrected))
        if corrected:
            self.total_ce += 1
        else:
            self.total_ue += 1
        self._trim(time_ns)

    def _trim(self, now_ns: float) -> None:
        """Evict events outside the half-open window
        ``(now - window_ns, now]``: an event exactly ``window_ns`` old
        has aged out (keeping it would make the window one instant
        wider than configured, and a rate sampled exactly one window
        after a burst would still count the burst)."""
        horizon = now_ns - self.window_ns
        while self._events and self._events[0].time_ns <= horizon:
            self._events.popleft()

    def rate_per_hour(self, now_ns: float,
                      corrected: Optional[bool] = None) -> float:
        """Errors per hour over the sliding window ending at now."""
        self._trim(now_ns)
        events = [e for e in self._events
                  if corrected is None or e.corrected == corrected]
        return len(events) * (NS_PER_HOUR / self.window_ns)

    def to_state(self) -> Dict[str, object]:
        """Serializable snapshot of this log for checkpointing."""
        return {
            "module_id": self.module_id,
            "window_ns": self.window_ns,
            "total_ce": self.total_ce,
            "total_ue": self.total_ue,
            "events": [[e.time_ns, e.address, bool(e.corrected)]
                       for e in self._events],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ModuleErrorLog":
        """Rebuild a log from :meth:`to_state` output, window intact."""
        log = cls(str(state["module_id"]),
                  window_ns=float(state["window_ns"]))
        for time_ns, address, corrected in state["events"]:
            log._events.append(ErrorRecord(float(time_ns),
                                           log.module_id,
                                           int(address),
                                           bool(corrected)))
        log.total_ce = int(state["total_ce"])
        log.total_ue = int(state["total_ue"])
        return log

    def repeat_addresses(self, min_count: int = 2) -> List[int]:
        """Addresses seen multiple times in the window — the signature
        of a permanent fault (Section III-E's remap trigger)."""
        counts: Dict[int, int] = {}
        for e in self._events:
            counts[e.address] = counts.get(e.address, 0) + 1
        return sorted(a for a, c in counts.items() if c >= min_count)


@dataclass(frozen=True)
class MarginAdvice:
    """The advisor's recommendation for one module."""
    module_id: str
    action: str                 # 'keep' | 'demote' | 'disable'
    ce_rate_per_hour: float
    ue_rate_per_hour: float
    reason: str


class MarginAdvisor:
    """Watches module logs and recommends margin demotion.

    Policy: any UE in the window disables margin exploitation for the
    module (UEs at the fast setting mean detection fired on originals
    or copies could not be served); a CE rate above ``demote_ce_rate``
    recommends stepping the margin down 200 MT/s.  Correctness never
    depends on this advice — it only tunes the performance/transition-
    frequency trade-off.
    """

    def __init__(self, demote_ce_rate: float = 1000.0,
                 window_ns: float = NS_PER_HOUR):
        if demote_ce_rate <= 0:
            raise ValueError("demote_ce_rate must be positive")
        self.demote_ce_rate = demote_ce_rate
        self.window_ns = window_ns
        self.logs: Dict[str, ModuleErrorLog] = {}

    def log_for(self, module_id: str) -> ModuleErrorLog:
        if module_id not in self.logs:
            self.logs[module_id] = ModuleErrorLog(module_id,
                                                  window_ns=self.window_ns)
        return self.logs[module_id]

    def record(self, time_ns: float, module_id: str, address: int,
               corrected: bool) -> None:
        self.log_for(module_id).record(time_ns, address, corrected)

    def advise(self, module_id: str, now_ns: float) -> MarginAdvice:
        log = self.log_for(module_id)
        ce = log.rate_per_hour(now_ns, corrected=True)
        ue = log.rate_per_hour(now_ns, corrected=False)
        if ue > 0:
            return MarginAdvice(module_id, "disable", ce, ue,
                                "uncorrected errors in window")
        if ce > self.demote_ce_rate:
            return MarginAdvice(module_id, "demote", ce, ue,
                                "CE rate {:.0f}/h exceeds {:.0f}/h"
                                .format(ce, self.demote_ce_rate))
        return MarginAdvice(module_id, "keep", ce, ue, "within budget")

    def to_state(self) -> Dict[str, object]:
        """Serializable snapshot of all module windows, sorted by id so
        checkpoint bytes are deterministic."""
        return {
            "demote_ce_rate": self.demote_ce_rate,
            "window_ns": self.window_ns,
            "logs": [self.logs[mid].to_state()
                     for mid in sorted(self.logs)],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "MarginAdvisor":
        """Rebuild an advisor (and every module window) from
        :meth:`to_state` output."""
        advisor = cls(demote_ce_rate=float(state["demote_ce_rate"]),
                      window_ns=float(state["window_ns"]))
        for log_state in state["logs"]:
            log = ModuleErrorLog.from_state(log_state)
            advisor.logs[log.module_id] = log
        return advisor

    def fleet_summary(self, now_ns: float) -> Dict[str, int]:
        """Counts of modules per recommended action."""
        out = {"keep": 0, "demote": 0, "disable": 0}
        for module_id in self.logs:
            out[self.advise(module_id, now_ns).action] += 1
        return out
