"""Fault injector driving error patterns into stored blocks.

Bridges :mod:`repro.errors.models` (what corruption looks like) and
:mod:`repro.errors.rates` (how often it strikes) into the functional
Hetero-DMR datapath, for both targeted injection (tests pick an
address and a pattern) and rate-driven campaigns (a Bernoulli draw per
access).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.replication import HeteroDMRManager
from .models import ERROR_PATTERNS


@dataclass
class InjectionStats:
    injected: int = 0
    by_pattern: Dict[str, int] = field(default_factory=dict)


class ErrorInjector:
    """Injects corruption into a Hetero-DMR manager's stored blocks."""

    def __init__(self, manager: HeteroDMRManager, seed: int = 31,
                 patterns: Optional[Sequence[str]] = None):
        self.manager = manager
        self._rng = random.Random(seed)
        names = list(patterns) if patterns else list(ERROR_PATTERNS)
        unknown = [n for n in names if n not in ERROR_PATTERNS]
        if unknown:
            raise ValueError("unknown patterns: {}".format(unknown))
        self.pattern_names = names
        self.stats = InjectionStats()

    def corrupt_copy(self, address: int,
                     pattern: Optional[str] = None) -> str:
        """Apply one (random or named) pattern to the copy at
        ``address``; returns the pattern used."""
        name = pattern or self._rng.choice(self.pattern_names)
        free = self.manager.channel.modules[self.manager.free_module_index]
        block = free.read_block(address)
        if block is None:
            raise KeyError("no copy stored at {:#x}".format(address))
        raw = ERROR_PATTERNS[name](block.stored_bytes(), self._rng)
        self.manager.corrupt_copy(address, raw)
        self.stats.injected += 1
        self.stats.by_pattern[name] = self.stats.by_pattern.get(name, 0) + 1
        return name

    def campaign(self, addresses: Sequence[int],
                 probability: float) -> List[int]:
        """Bernoulli-corrupt each address's copy with ``probability``;
        returns the corrupted addresses."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        hit = []
        for addr in addresses:
            if self._rng.random() < probability:
                self.corrupt_copy(addr)
                hit.append(addr)
        return hit
