"""Fault injector driving error patterns into stored blocks.

Bridges :mod:`repro.errors.models` (what corruption looks like) and
:mod:`repro.errors.rates` (how often it strikes) into the functional
Hetero-DMR datapath, for targeted injection (tests pick an address and
a pattern) and for campaigns — either a flat per-access Bernoulli draw
or the time-aware rate-driven mode, which draws the number of faults
in a window from the same errors/hour model the Figure 6 populations
use (:func:`repro.errors.rates.errors_per_hour`), so chaos runs and
characterization share one rate model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.replication import HeteroDMRManager
from .models import ERROR_PATTERNS

NS_PER_HOUR = 3_600_000_000_000.0


def poisson_draw(rng: random.Random, lam: float) -> int:
    """Sample Poisson(lam) deterministically from ``rng`` (Knuth's
    product method for small rates, a clamped normal approximation for
    large ones — exactness does not matter past ~50 events/window)."""
    if lam < 0:
        raise ValueError("rate must be non-negative")
    if lam == 0.0:
        return 0
    if lam > 50.0:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    limit = math.exp(-lam)
    count, product = 0, rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


@dataclass
class InjectionStats:
    injected: int = 0
    by_pattern: Dict[str, int] = field(default_factory=dict)


class ErrorInjector:
    """Injects corruption into a Hetero-DMR manager's stored blocks."""

    def __init__(self, manager: HeteroDMRManager, seed: int = 31,
                 patterns: Optional[Sequence[str]] = None):
        self.manager = manager
        self._rng = random.Random(seed)
        names = list(patterns) if patterns else list(ERROR_PATTERNS)
        unknown = [n for n in names if n not in ERROR_PATTERNS]
        if unknown:
            raise ValueError("unknown patterns: {}".format(unknown))
        self.pattern_names = names
        self.stats = InjectionStats()

    def corrupt_copy(self, address: int,
                     pattern: Optional[str] = None) -> str:
        """Apply one (random or named) pattern to the copy at
        ``address``; returns the pattern used."""
        name = pattern or self._rng.choice(self.pattern_names)
        free = self.manager.channel.modules[self.manager.free_module_index]
        block = free.read_block(address)
        if block is None:
            raise KeyError("no copy stored at {:#x}".format(address))
        raw = ERROR_PATTERNS[name](block.stored_bytes(), self._rng)
        self.manager.corrupt_copy(address, raw)
        self.stats.injected += 1
        self.stats.by_pattern[name] = self.stats.by_pattern.get(name, 0) + 1
        return name

    def campaign(self, addresses: Sequence[int],
                 probability: Optional[float] = None, *,
                 rate_per_hour: Optional[float] = None,
                 duration_ns: Optional[float] = None) -> List[int]:
        """Corrupt copies across ``addresses``; returns the hit list.

        Two modes:

        * flat Bernoulli (``probability``): each address's copy is
          corrupted independently — the original per-access model;
        * time-aware rate-driven (``rate_per_hour`` + ``duration_ns``):
          the number of faults in the window is Poisson with mean
          ``rate * duration``, each landing on a uniformly drawn
          address — the errors/hour model of :mod:`repro.errors.rates`,
          so chaos campaigns and the Figure 6 populations share one
          rate model.
        """
        if (probability is None) == (rate_per_hour is None):
            raise ValueError("pass exactly one of probability or "
                             "rate_per_hour")
        addresses = list(addresses)
        hit: List[int] = []
        if probability is not None:
            if not 0.0 <= probability <= 1.0:
                raise ValueError("probability must be in [0, 1]")
            for addr in addresses:
                if self._rng.random() < probability:
                    self.corrupt_copy(addr)
                    hit.append(addr)
            return hit
        if duration_ns is None or duration_ns < 0:
            raise ValueError("rate-driven mode needs duration_ns >= 0")
        if rate_per_hour < 0:
            raise ValueError("rate must be non-negative")
        if not addresses:
            return hit
        count = poisson_draw(self._rng,
                             rate_per_hour * duration_ns / NS_PER_HOUR)
        for _ in range(count):
            addr = addresses[self._rng.randrange(len(addresses))]
            self.corrupt_copy(addr)
            hit.append(addr)
        return hit
