"""Error models, rates, and fault injection for out-of-spec operation."""

from .injector import ErrorInjector, InjectionStats, poisson_draw
from .models import (ERROR_PATTERNS, STORED_BYTES, chip_failure,
                     full_block_error, multi_byte_burst, row_corruption,
                     single_bit_flip, stuck_at_zero)
from .telemetry import (ErrorRecord, MarginAdvice, MarginAdvisor,
                        ModuleErrorLog)
from .rates import (ACCESSES_PER_HOUR, ErrorScenario,
                    FULL_POPULATION_MULTIPLIER, errors_per_hour,
                    per_access_error_probability,
                    population_error_summary)

__all__ = [
    "ACCESSES_PER_HOUR", "ERROR_PATTERNS", "ErrorInjector",
    "ErrorRecord", "ErrorScenario", "MarginAdvice", "MarginAdvisor", "ModuleErrorLog", "FULL_POPULATION_MULTIPLIER", "InjectionStats",
    "STORED_BYTES", "chip_failure", "errors_per_hour",
    "full_block_error", "multi_byte_burst",
    "per_access_error_probability", "poisson_draw",
    "population_error_summary",
    "row_corruption", "single_bit_flip", "stuck_at_zero",
]
